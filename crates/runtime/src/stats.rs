//! Run reports: what a simulation did, and what it committed.
//!
//! Speculative output must not escape: a line printed under an optimistic
//! assumption is buffered until its interval finalizes (output commit) and
//! discarded if the interval rolls back. [`RunReport::outputs`] therefore
//! contains exactly the lines a real external observer would have seen.

use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};

use hope_analysis::dynamic::RaceReport;
use hope_core::{EngineStats, ProcessId, TrackingStats};
use hope_sim::VirtualTime;

use crate::governor::{GovernorStats, ModeTransition};

/// One committed output line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputLine {
    /// Virtual time at which the line was produced (possibly while
    /// speculative).
    pub time: VirtualTime,
    /// Virtual time at which the line *committed* — when the buffering
    /// interval finalized (equal to `time` for lines produced while
    /// definite). This is the honest completion metric for optimistic
    /// programs, whose bodies often return long before their results are
    /// certain.
    pub committed_at: VirtualTime,
    /// The producing process.
    pub process: ProcessId,
    /// The text.
    pub line: String,
}

impl fmt::Display for OutputLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}] {}", self.time, self.process, self.line)
    }
}

/// Cumulative counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct RunStats {
    /// Messages sent (including those that later became ghosts).
    pub messages_sent: u64,
    /// Messages placed into mailboxes.
    pub messages_delivered: u64,
    /// Ghost messages dropped before delivery to user code.
    pub ghosts_dropped: u64,
    /// Rollback events (process-history truncations).
    pub rollback_events: u64,
    /// Body re-executions caused by rollback.
    pub replays: u64,
    /// Journal entries discarded by truncations.
    pub truncated_entries: u64,
    /// Output lines committed.
    pub outputs_released: u64,
    /// Speculative output lines discarded by rollback.
    pub outputs_discarded: u64,
    /// Engine counters (guesses, affirms, denies, finalizations, …).
    pub engine: EngineStats,
    /// Cross-shard tracking-traffic counters from the sharded engine
    /// (boundary crossings, batch flushes, queue depth; all zero on a
    /// 1-shard engine). Contention diagnostics only: they vary with
    /// [`SimConfig::engine_shards`](crate::SimConfig) while every
    /// committed observable stays identical, so — like the DepSet
    /// cow/spill deltas — they are excluded from
    /// [`RunReport::fingerprint`].
    pub tracking: TrackingStats,
    /// `Shared`-state lock acquisitions made by process-side [`Ctx`]
    /// (crate::Ctx) calls over the whole run. The Ctx hot path takes the
    /// lock once per primitive (not once per sub-step); the regression
    /// suite pins that with this counter. Diagnostics only, excluded from
    /// [`RunReport::fingerprint`] alongside the other contention counters.
    pub ctx_lock_acquisitions: u64,
    /// Fault-injection counters (all zero without a
    /// [`FaultPlan`](hope_sim::FaultPlan)).
    pub faults: FaultStats,
    /// Optimism-governor counters (all zero without
    /// [`SimConfig::with_governor`](crate::SimConfig::with_governor)).
    /// Control-plane diagnostics only: the governor reshapes *when*
    /// optimism is spent, not *what* commits, so — like
    /// [`tracking`](RunStats::tracking) — these are excluded from
    /// [`RunReport::fingerprint`].
    pub governor: GovernorStats,
    /// End-of-run memory footprint: what fossil collection left live (see
    /// [`SimConfig::fossil_collection`](crate::SimConfig)).
    pub memory: MemoryStats,
}

/// End-of-run memory footprint of the engine and the per-process journals.
///
/// With [`SimConfig::fossil_collection`](crate::SimConfig) enabled these
/// stay bounded by the work in flight between sweeps, however long the run;
/// with it disabled (the default) the `live_*` numbers equal the totals and
/// the `reclaimed_*`/horizon numbers are zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct MemoryStats {
    /// Interval records held live by the engine.
    pub live_intervals: u64,
    /// AID records held live by the engine.
    pub live_aids: u64,
    /// Journal entries held live across all processes (what
    /// [`SimConfig::max_journal_entries`](crate::SimConfig) bounds).
    pub live_journal_entries: u64,
    /// The engine's interval commit horizon: every interval below it was
    /// finalized (or rolled back) and reclaimed.
    pub interval_horizon: u64,
    /// The engine's AID commit horizon: every AID below it was decided and
    /// reclaimed.
    pub aid_horizon: u64,
    /// Interval records reclaimed over the whole run.
    pub reclaimed_intervals: u64,
    /// AID records reclaimed over the whole run.
    pub reclaimed_aids: u64,
    /// Journal entries reclaimed by horizon prefix truncation (distinct
    /// from [`RunStats::truncated_entries`], which counts rollback
    /// truncations).
    pub reclaimed_journal_entries: u64,
    /// Reclaimed-but-denied AIDs the engine remembers (the sparse residue
    /// that keeps fossil collection transparent to ghost filtering).
    pub fossil_denied: u64,
    /// Dependence-set copy-on-write duplications over this run, measured
    /// as the delta of [`hope_core::depset::cow_copies_total`] across
    /// [`Simulation::run`](crate::Simulation::run). The underlying counter
    /// is process-global, so simulations running *concurrently* (parallel
    /// test threads) bleed into each other's delta; diagnostics only, and
    /// excluded from [`RunReport::fingerprint`].
    pub depset_cow_copies: u64,
    /// Dependence-set inline→bitset spills over this run (delta of
    /// [`hope_core::depset::spills_total`]; same caveat as
    /// [`depset_cow_copies`](MemoryStats::depset_cow_copies)).
    pub depset_spills: u64,
}

/// Counters for injected faults and the recovery machinery they trigger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct FaultStats {
    /// Data messages dropped by the plan (random drops and partitions).
    pub drops: u64,
    /// Duplicate copies of data messages injected by the plan.
    pub dupes: u64,
    /// Duplicate reliable deliveries suppressed by receiver-side dedup.
    pub dupes_suppressed: u64,
    /// Deliveries that drew extra latency from a delay spike.
    pub delay_spikes: u64,
    /// Messages (of any kind) lost because the destination was crashed or
    /// down when delivery fired.
    pub lost_to_down: u64,
    /// Delivery acks scheduled (one per reliable delivery, dupes included).
    pub acks: u64,
    /// Delivery acks the plan dropped on the reverse link.
    pub ack_drops: u64,
    /// First-attempt reliable sends executed ([`Ctx::send_reliable`]
    /// (crate::Ctx) calls, counting replays after rollback past the first
    /// attempt). `retries / reliable_sends` is the loss/deny pressure
    /// ratio the governor's deny-rate window measures per site. Counted
    /// even without a fault plan, since reliable sends run the same path
    /// on a perfect substrate.
    pub reliable_sends: u64,
    /// Reliable-send retransmissions (attempts beyond the first).
    pub retries: u64,
    /// "Delivered" assumptions denied by a retransmission timeout.
    pub timeout_denies: u64,
    /// Assumptions denied because their owning process was killed.
    pub crash_denies: u64,
    /// Fault-injected process kills applied.
    pub kills: u64,
    /// Killed processes brought back (journal-prefix recovery).
    pub restarts: u64,
    /// Ghost messages dropped whose doomed AID was denied *by fault
    /// injection* (a timeout or a kill), as opposed to program logic.
    pub ghosts_from_faults: u64,
}

impl FaultStats {
    /// Accumulate `other` into `self` (used by chaos sweeps to aggregate
    /// counters across runs).
    pub fn merge(&mut self, other: &FaultStats) {
        self.drops += other.drops;
        self.dupes += other.dupes;
        self.dupes_suppressed += other.dupes_suppressed;
        self.delay_spikes += other.delay_spikes;
        self.lost_to_down += other.lost_to_down;
        self.acks += other.acks;
        self.ack_drops += other.ack_drops;
        self.reliable_sends += other.reliable_sends;
        self.retries += other.retries;
        self.timeout_denies += other.timeout_denies;
        self.crash_denies += other.crash_denies;
        self.kills += other.kills;
        self.restarts += other.restarts;
        self.ghosts_from_faults += other.ghosts_from_faults;
    }
}

/// Why a process died, surfaced through [`RunReport::crash_reasons`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CrashReason {
    /// The body panicked; the payload is the panic message.
    Panic(String),
    /// A [`FaultPlan`](hope_sim::FaultPlan) kill with no restart (kills
    /// *with* a restart recover and never appear here).
    FaultKill,
    /// A per-process limit was exceeded; the payload describes which.
    LimitExceeded(String),
    /// The process's journal exceeded
    /// [`SimConfig::max_journal_entries`](crate::SimConfig) **live**
    /// (post-truncation) entries. Recoverable in the sense that the run
    /// continues and the report records exactly which process overflowed
    /// and at what bound; with
    /// [`SimConfig::fossil_collection`](crate::SimConfig) enabled and a
    /// body that [`checkpoint`](crate::Ctx::checkpoint)s, long runs do not
    /// trip it spuriously.
    JournalOverflow {
        /// The configured live-entry bound that was crossed.
        limit: usize,
    },
}

impl fmt::Display for CrashReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Bare message: `RunReport::errors` keeps its historical shape.
            CrashReason::Panic(msg) => f.write_str(msg),
            CrashReason::FaultKill => f.write_str("killed by fault injection"),
            CrashReason::LimitExceeded(what) => f.write_str(what),
            CrashReason::JournalOverflow { limit } => {
                write!(f, "journal grew past {limit} live entries")
            }
        }
    }
}

/// The result of [`Simulation::run`](crate::Simulation::run).
#[derive(Debug, Clone)]
pub struct RunReport {
    pub(crate) end_time: VirtualTime,
    pub(crate) events: u64,
    pub(crate) hit_limits: bool,
    pub(crate) outputs: Vec<OutputLine>,
    pub(crate) stats: RunStats,
    pub(crate) finish_times: BTreeMap<ProcessId, VirtualTime>,
    pub(crate) unfinished: Vec<ProcessId>,
    pub(crate) errors: BTreeMap<ProcessId, String>,
    pub(crate) crashes: BTreeMap<ProcessId, CrashReason>,
    pub(crate) trace: Vec<String>,
    pub(crate) races: Vec<RaceReport>,
    pub(crate) gov_transitions: Vec<ModeTransition>,
}

impl RunReport {
    /// Virtual time when the last event was processed.
    pub fn end_time(&self) -> VirtualTime {
        self.end_time
    }

    /// Number of scheduler events processed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// `true` if the run stopped at `max_events`/`max_virtual_time` rather
    /// than quiescence.
    pub fn hit_limits(&self) -> bool {
        self.hit_limits
    }

    /// Committed output lines, ordered by `(time, process)`.
    pub fn outputs(&self) -> &[OutputLine] {
        &self.outputs
    }

    /// Just the committed text lines, in order.
    pub fn output_lines(&self) -> Vec<&str> {
        self.outputs.iter().map(|o| o.line.as_str()).collect()
    }

    /// Counters.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// When `pid`'s body returned `Ok(())`, if it did.
    pub fn finish_time(&self, pid: ProcessId) -> Option<VirtualTime> {
        self.finish_times.get(&pid).copied()
    }

    /// Processes that never finished (blocked on `recv` at quiescence —
    /// normal for server loops).
    pub fn unfinished(&self) -> &[ProcessId] {
        &self.unfinished
    }

    /// When the last output line of the whole run committed.
    pub fn last_commit_time(&self) -> Option<VirtualTime> {
        self.outputs.iter().map(|o| o.committed_at).max()
    }

    /// When `pid`'s last output line committed.
    pub fn commit_time(&self, pid: ProcessId) -> Option<VirtualTime> {
        self.outputs
            .iter()
            .filter(|o| o.process == pid)
            .map(|o| o.committed_at)
            .max()
    }

    /// The completion time of `pid`: the later of its body finishing and
    /// its last output committing. The right number to report for
    /// optimistic programs.
    pub fn completion_time(&self, pid: ProcessId) -> Option<VirtualTime> {
        match (self.finish_time(pid), self.commit_time(pid)) {
            (Some(f), Some(c)) => Some(f.max(c)),
            (Some(f), None) => Some(f),
            (None, c) => c,
        }
    }

    /// Panic messages of crashed process bodies, if any (the rendered form
    /// of [`RunReport::crash_reasons`]).
    pub fn errors(&self) -> &BTreeMap<ProcessId, String> {
        &self.errors
    }

    /// Typed reasons for every crashed process: a body panic, a
    /// fault-injected kill, or an exceeded per-process limit. Chaos tests
    /// use this to assert *why* a process died, not just that it did.
    pub fn crash_reasons(&self) -> &BTreeMap<ProcessId, CrashReason> {
        &self.crashes
    }

    /// A deterministic digest of everything observable about the run —
    /// committed outputs, counters, finish times, crashes, races — but not
    /// the (optional, verbose) trace. Two runs of the same program under
    /// the same [`SimConfig`](crate::SimConfig) (fault plan included) must
    /// produce equal fingerprints; the chaos oracle asserts exactly that
    /// to prove failing seeds replay bit-identically.
    pub fn fingerprint(&self) -> u64 {
        // The DepSet deltas are measured against process-global counters,
        // which concurrent simulations (parallel test threads) pollute, so
        // they are the one pair of counters a replay may legitimately
        // change: mask them out of the digest.
        let mut stats = self.stats;
        stats.memory.depset_cow_copies = 0;
        stats.memory.depset_spills = 0;
        // Contention counters vary with the shard count (and lock strategy)
        // while committed observables must not: the sharded-vs-unsharded
        // differential asserts fingerprint equality across engine_shards,
        // so these are masked exactly like the DepSet deltas above.
        stats.tracking = TrackingStats::default();
        stats.ctx_lock_acquisitions = 0;
        // Governor counters are control-plane state: governor-on and
        // governor-off runs must agree on every committed observable while
        // these legitimately differ, and the transparency oracle compares
        // runs across that config change. Masked like the tracking stats.
        stats.governor = GovernorStats::default();
        let mut h = std::collections::hash_map::DefaultHasher::new();
        format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            self.end_time,
            self.events,
            self.hit_limits,
            self.outputs,
            stats,
            self.finish_times,
            self.unfinished,
            self.crashes,
            self.races,
        )
        .hash(&mut h);
        h.finish()
    }

    /// `true` if every process finished and nothing crashed or hit limits.
    pub fn completed(&self) -> bool {
        self.unfinished.is_empty() && self.errors.is_empty() && !self.hit_limits
    }

    /// The execution trace, if [`SimConfig::trace`](crate::SimConfig::trace)
    /// was enabled (empty otherwise). One line per primitive call, message
    /// movement, ghost drop, rollback and output commit, timestamped in
    /// virtual time.
    pub fn trace(&self) -> &[String] {
        &self.trace
    }

    /// Findings of the online race detector, if
    /// [`SimConfig::detect_races`](crate::SimConfig::detect_races) was
    /// enabled (empty otherwise): decide/decide races on one AID, sends
    /// issued under doomed speculation, and guesses racing a decide.
    pub fn races(&self) -> &[RaceReport] {
        &self.races
    }

    /// The optimism governor's mode-transition trace in virtual-time
    /// order, if [`SimConfig::with_governor`](crate::SimConfig) was set
    /// (empty otherwise). A pure function of `(seed, config)`: the
    /// determinism suite pins it identical across reruns, engine shard
    /// counts, and fossil collection. Like the trace, it is not part of
    /// [`RunReport::fingerprint`].
    pub fn governor_transitions(&self) -> &[ModeTransition] {
        &self.gov_transitions
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run: end={} events={} rollbacks={} replays={} ghosts={}",
            self.end_time,
            self.events,
            self.stats.rollback_events,
            self.stats.replays,
            self.stats.ghosts_dropped
        )?;
        for o in &self.outputs {
            writeln!(f, "  {o}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accessors() {
        let r = RunReport {
            end_time: VirtualTime::from_nanos(10),
            events: 3,
            hit_limits: false,
            outputs: vec![OutputLine {
                time: VirtualTime::ZERO,
                committed_at: VirtualTime::from_nanos(4),
                process: ProcessId(0),
                line: "hello".into(),
            }],
            stats: RunStats::default(),
            finish_times: [(ProcessId(0), VirtualTime::from_nanos(9))].into(),
            unfinished: vec![],
            errors: BTreeMap::new(),
            crashes: BTreeMap::new(),
            trace: Vec::new(),
            races: Vec::new(),
            gov_transitions: Vec::new(),
        };
        assert!(r.completed());
        assert_eq!(r.output_lines(), vec!["hello"]);
        assert_eq!(
            r.finish_time(ProcessId(0)),
            Some(VirtualTime::from_nanos(9))
        );
        assert_eq!(r.finish_time(ProcessId(1)), None);
        assert_eq!(r.last_commit_time(), Some(VirtualTime::from_nanos(4)));
        assert_eq!(
            r.commit_time(ProcessId(0)),
            Some(VirtualTime::from_nanos(4))
        );
        assert_eq!(r.commit_time(ProcessId(1)), None);
        assert_eq!(
            r.completion_time(ProcessId(0)),
            Some(VirtualTime::from_nanos(9)),
            "finish later than commit"
        );
        assert_eq!(r.completion_time(ProcessId(1)), None);
        assert!(r.to_string().contains("hello"));
    }

    #[test]
    fn unfinished_or_errors_mean_incomplete() {
        let mut r = RunReport {
            end_time: VirtualTime::ZERO,
            events: 0,
            hit_limits: false,
            outputs: vec![],
            stats: RunStats::default(),
            finish_times: BTreeMap::new(),
            unfinished: vec![ProcessId(1)],
            errors: BTreeMap::new(),
            crashes: BTreeMap::new(),
            trace: Vec::new(),
            races: Vec::new(),
            gov_transitions: Vec::new(),
        };
        assert!(!r.completed());
        r.unfinished.clear();
        r.errors.insert(ProcessId(0), "boom".into());
        r.crashes
            .insert(ProcessId(0), CrashReason::Panic("boom".into()));
        assert!(!r.completed());
        assert_eq!(
            r.crash_reasons().get(&ProcessId(0)),
            Some(&CrashReason::Panic("boom".into()))
        );
        r.errors.clear();
        r.crashes.clear();
        r.hit_limits = true;
        assert!(!r.completed());
    }

    #[test]
    fn fingerprint_distinguishes_observable_changes_but_not_trace() {
        let base = RunReport {
            end_time: VirtualTime::from_nanos(10),
            events: 3,
            hit_limits: false,
            outputs: vec![],
            stats: RunStats::default(),
            finish_times: BTreeMap::new(),
            unfinished: vec![],
            errors: BTreeMap::new(),
            crashes: BTreeMap::new(),
            trace: Vec::new(),
            races: Vec::new(),
            gov_transitions: Vec::new(),
        };
        let mut traced = base.clone();
        traced.trace.push("[0] noise".into());
        assert_eq!(base.fingerprint(), traced.fingerprint());
        let mut other = base.clone();
        other.events = 4;
        assert_ne!(base.fingerprint(), other.fingerprint());
    }

    #[test]
    fn crash_reason_display_shapes() {
        assert_eq!(CrashReason::Panic("oops".into()).to_string(), "oops");
        assert_eq!(
            CrashReason::FaultKill.to_string(),
            "killed by fault injection"
        );
        assert_eq!(
            CrashReason::LimitExceeded("journal limit".into()).to_string(),
            "journal limit"
        );
        assert_eq!(
            CrashReason::JournalOverflow { limit: 64 }.to_string(),
            "journal grew past 64 live entries"
        );
    }

    #[test]
    fn fault_stats_merge_accumulates() {
        let mut a = FaultStats {
            drops: 1,
            retries: 2,
            reliable_sends: 5,
            ..FaultStats::default()
        };
        let b = FaultStats {
            drops: 3,
            kills: 1,
            restarts: 1,
            reliable_sends: 7,
            ..FaultStats::default()
        };
        a.merge(&b);
        assert_eq!(a.drops, 4);
        assert_eq!(a.retries, 2);
        assert_eq!(a.kills, 1);
        assert_eq!(a.restarts, 1);
        assert_eq!(a.reliable_sends, 12);
    }
}
