//! The scheduler choice-point hook: [`ScheduleOracle`].
//!
//! The scheduler normally dispatches events in earliest-deadline order
//! (`queue.pop()`). An installed oracle instead picks *any* pending event
//! at each dispatch, which is exactly the control a model checker needs:
//! every nondeterministic outcome of a run — message interleavings across
//! links, ack-vs-retransmission-deadline races, restart timing — is some
//! sequence of these picks. Production runs leave the slot empty and pay a
//! single `Option::is_some` check per event (see `Shared::next_event`).
//!
//! The trait is crate-private on purpose: the only consumer is the
//! [`mc`](crate::mc) module, and keeping the hook internal means the
//! dispatch loop's invariants (monotone virtual time, per-link FIFO) are
//! enforced in one place rather than promised to arbitrary callers.

use crate::shared::Shared;

/// Picks the next pending event to dispatch.
pub(crate) trait ScheduleOracle: Send {
    /// Return the queue sequence number of the event to fire next, chosen
    /// from `sh.queue.pending_sorted()`, or `None` to defer to the default
    /// earliest-deadline pop. The chosen event's fire time is clamped to
    /// `sh.now`, so picking a later-deadline event early is equivalent to
    /// the skipped events having drawn longer latencies — every oracle
    /// schedule is a realizable execution.
    fn choose(&mut self, sh: &Shared) -> Option<u64>;
}

/// The installed oracle, if any. A newtype so [`Shared`] can keep deriving
/// `Debug` around the unprintable trait object (same pattern as
/// `ObserverSlot`).
pub(crate) struct SchedOracleSlot(pub(crate) Option<Box<dyn ScheduleOracle>>);

impl std::fmt::Debug for SchedOracleSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "SchedOracleSlot(set)"
        } else {
            "SchedOracleSlot(unset)"
        })
    }
}
