//! The simulation: spawning processes and running them to quiescence.
//!
//! Processes execute on dedicated OS threads, but **never concurrently**:
//! the scheduler resumes exactly one process at a time and waits for it to
//! park (classic coroutine-via-thread discrete-event simulation). All
//! scheduling decisions depend only on virtual time, sequence numbers and
//! the master seed, so every run is bit-for-bit reproducible.
//!
//! Rollback never rewinds the virtual clock — exactly as in the real world,
//! a denied assumption wastes the time spent computing under it, and the
//! re-execution (journal replay + live pessimistic branch) proceeds from
//! the moment the deny arrived. This is what makes the Call Streaming
//! latency measurements meaningful.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam_channel::{unbounded, Receiver, Sender};
use hope_core::ProcessId;
use hope_sim::{VirtualDuration, VirtualTime};
use parking_lot::Mutex;

use crate::config::SimConfig;
use crate::ctx::Ctx;
use crate::journal::Journal;
use crate::message::Mailbox;
use crate::shared::{EventKind, ObserverSlot, ProcShared, ProcState, Shared};
use crate::signal::{Hope, Signal};
use crate::stats::{CrashReason, RunReport};

/// What the scheduler tells a parked process thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ResumeSignal {
    /// Continue (the parked operation re-checks its condition and the
    /// rollback-pending flag).
    Go,
    /// The simulation is over; unwind and exit the thread.
    Shutdown,
}

type Body = Arc<dyn Fn(&mut Ctx) -> Hope<()> + Send + Sync + 'static>;

/// A configured simulation: spawn processes, then [`run`](Simulation::run).
///
/// # Examples
///
/// The paper's Figure 2 skeleton — a Worker that guesses and a WorryWart
/// that verifies:
///
/// ```
/// use hope_runtime::{Simulation, SimConfig, Value};
/// use hope_sim::VirtualDuration;
///
/// let mut sim = Simulation::new(SimConfig::with_seed(1));
/// // Spawn order fixes ProcessIds: worker = P0, worrywart = P1.
/// let worrywart_pid = hope_core::ProcessId(1);
/// let worker = sim.spawn("worker", move |ctx| {
///     let part_page = ctx.aid_init()?;
///     ctx.send(worrywart_pid, Value::Int(i64::from(part_page.index() as u32)))?;
///     if ctx.guess(part_page)? {
///         ctx.output("summary printed on current page")?;
///     } else {
///         ctx.output("new page forced")?;
///     }
///     Ok(())
/// });
/// sim.spawn("worrywart", |ctx| {
///     let msg = ctx.recv()?;
///     let aid = hope_core::AidId::from_index(msg.payload.expect_int() as u64);
///     ctx.compute(VirtualDuration::from_millis(1))?; // the real check
///     ctx.affirm(aid)?;
///     Ok(())
/// });
/// let report = sim.run();
/// assert!(report.completed());
/// assert_eq!(report.output_lines(), vec!["summary printed on current page"]);
/// # let _ = worker;
/// ```
pub struct Simulation {
    shared: Arc<Mutex<Shared>>,
    bodies: Vec<Body>,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("processes", &self.bodies.len())
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Create a simulation with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Simulation {
            shared: Arc::new(Mutex::new(Shared::new(config))),
            bodies: Vec::new(),
        }
    }

    /// Register a process. Ids are assigned densely in spawn order
    /// (`P0, P1, …`), so closures may capture peers' ids by construction
    /// order.
    ///
    /// The body runs when [`run`](Simulation::run) is called. It may be
    /// re-executed after rollback, so it must be `Fn` (not `FnOnce`) and
    /// deterministic given `Ctx` results.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        body: impl Fn(&mut Ctx) -> Hope<()> + Send + Sync + 'static,
    ) -> ProcessId {
        let mut sh = self.shared.lock();
        let pid = sh.engine.register_process();
        let seed = sh.config.seed;
        let idx = sh.procs.len();
        debug_assert_eq!(pid.0 as usize, idx, "engine assigns dense pids");
        sh.procs.push(ProcShared {
            pid,
            name: name.into(),
            state: ProcState::Holding,
            mailbox: Mailbox::new(),
            journal: Journal::default(),
            rollback_pending: false,
            wake_epoch: 0,
            rng: hope_sim::SimRng::new(seed).fork(idx as u64),
            finish_time: None,
            crash: None,
            next_reliable: 0,
            own_aids: Vec::new(),
            snapshots: Vec::new(),
            restorable: false,
        });
        self.bodies.push(Arc::new(body));
        pid
    }

    /// Number of spawned processes.
    pub fn process_count(&self) -> usize {
        self.bodies.len()
    }

    /// Install a runtime observer: `observer` is called once per executed
    /// HOPE action — guesses (including re-executed ones returning
    /// `false`), deciders (including skipped one-shot re-uses), sends,
    /// receives, and ghost drops — with the acting process and the engine
    /// effects the action produced.
    ///
    /// Journal *replay* after a rollback is not reported (those actions
    /// already were, on first execution); the re-executed live suffix is.
    /// Feed the callbacks to a [`hope_core::RuntimeObserver`] such as the
    /// `hope-analysis` race detector:
    ///
    /// ```
    /// use std::sync::Arc;
    /// use hope_core::{NullObserver, RuntimeObserver};
    /// use hope_runtime::{SimConfig, Simulation};
    /// use parking_lot::Mutex;
    ///
    /// let mut sim = Simulation::new(SimConfig::with_seed(1));
    /// let observer = Arc::new(Mutex::new(NullObserver));
    /// let hook = observer.clone();
    /// sim.set_observer(move |pid, action, effects| {
    ///     hook.lock().observe(pid, action, effects);
    /// });
    /// ```
    pub fn set_observer(
        &mut self,
        observer: impl FnMut(ProcessId, &hope_core::Action, &[hope_core::Effect]) + Send + 'static,
    ) {
        self.shared.lock().observer = ObserverSlot(Some(Box::new(observer)));
    }

    /// Install a schedule oracle that overrides earliest-deadline dispatch
    /// (see [`crate::mc`]). Crate-private: the only legitimate driver is
    /// the model checker, whose oracles preserve the realizability
    /// invariants documented on `Shared::next_event`.
    pub(crate) fn set_schedule_oracle(&mut self, oracle: Box<dyn crate::oracle::ScheduleOracle>) {
        self.shared.lock().sched_oracle = crate::oracle::SchedOracleSlot(Some(oracle));
    }

    /// Run the simulation until quiescence (no events left, or every
    /// process finished) or a configured limit, and report what happened.
    pub fn run(self) -> RunReport {
        let Simulation { shared, bodies } = self;
        // The DepSet counters are process-global; report this run's delta.
        let depset_base = (
            hope_core::depset::cow_copies_total(),
            hope_core::depset::spills_total(),
        );
        let n = bodies.len();
        let mut resume_txs: Vec<Sender<ResumeSignal>> = Vec::with_capacity(n);
        let mut yield_rxs: Vec<Receiver<()>> = Vec::with_capacity(n);
        let mut handles: Vec<JoinHandle<()>> = Vec::with_capacity(n);

        for (idx, body) in bodies.iter().enumerate() {
            let (rtx, rrx) = unbounded::<ResumeSignal>();
            let (ytx, yrx) = unbounded::<()>();
            let sh = shared.clone();
            let body = body.clone();
            let name = shared.lock().procs[idx].name.clone();
            let handle = std::thread::Builder::new()
                .name(format!("hope-{name}"))
                .spawn(move || process_wrapper(sh, idx, body, rrx, ytx))
                .expect("spawn process thread");
            resume_txs.push(rtx);
            yield_rxs.push(yrx);
            handles.push(handle);
        }

        {
            let mut sh = shared.lock();
            for idx in 0..n {
                sh.schedule_wake(idx, VirtualTime::ZERO);
            }
        }

        let resume = |proc: usize| {
            {
                let mut sh = shared.lock();
                sh.procs[proc].state = ProcState::Running;
            }
            let _ = resume_txs[proc].send(ResumeSignal::Go);
            if yield_rxs[proc].recv().is_err() {
                // The thread died without yielding: machinery bug or a
                // crash already recorded by the wrapper.
                let mut sh = shared.lock();
                if sh.procs[proc].state == ProcState::Running {
                    sh.procs[proc].state = ProcState::Crashed;
                    sh.procs[proc].crash = Some(CrashReason::Panic(
                        "process thread exited without yielding".to_string(),
                    ));
                }
            }
        };

        // Holds one popped `EventKind` by value for the instant before it
        // runs — indirection would buy nothing here.
        #[allow(clippy::large_enum_variant)]
        enum Step {
            Run(EventKind),
            Quiesced,
            Limits,
        }
        // Fossil-collection cadence: sweeping is transparent (it can only
        // reclaim storage, never change outputs), so any period works; 256
        // keeps the amortized cost per event negligible.
        const FOSSIL_SWEEP_PERIOD: u64 = 256;
        let mut events: u64 = 0;
        let mut hit_limits = false;
        loop {
            let step = {
                let mut sh = shared.lock();
                // A Finished process can still be rolled back (its last
                // intervals may be speculative), so quiescence requires
                // both: everyone finished AND no rollback awaiting resume.
                let all_done = sh
                    .procs
                    .iter()
                    .all(|p| matches!(p.state, ProcState::Finished | ProcState::Crashed));
                let any_pending = sh.procs.iter().any(|p| p.rollback_pending);
                // Acks, retransmission deadlines and restarts still change
                // outcomes after every body has returned; drain them first.
                if all_done && !any_pending && sh.pending_system == 0 {
                    Step::Quiesced
                } else {
                    match sh.next_event() {
                        None => Step::Quiesced,
                        Some((t, ev)) => {
                            if t > sh.config.max_virtual_time {
                                Step::Limits
                            } else {
                                events += 1;
                                if events > sh.config.max_events {
                                    Step::Limits
                                } else {
                                    if t > sh.now {
                                        sh.now = t;
                                    }
                                    // Process faults fire between events:
                                    // "crash at the Nth scheduler step"
                                    // means just before the Nth dispatch.
                                    let kills: Vec<(usize, Option<VirtualDuration>)> = sh
                                        .config
                                        .faults
                                        .as_ref()
                                        .map(|plan| {
                                            plan.kills_at(events)
                                                .map(|k| (k.node as usize, k.restart_after))
                                                .collect()
                                        })
                                        .unwrap_or_default();
                                    for (victim, restart_after) in kills {
                                        if victim < sh.procs.len() {
                                            sh.kill_process(victim, restart_after);
                                        }
                                    }
                                    Step::Run(ev)
                                }
                            }
                        }
                    }
                }
            };
            let ev = match step {
                Step::Run(ev) => ev,
                Step::Limits => {
                    hit_limits = true;
                    break;
                }
                Step::Quiesced => {
                    // Optionally let the definite external observer settle
                    // the surviving speculation (see the SimConfig docs);
                    // its cascades may schedule new work, so keep looping.
                    let committed = {
                        let mut sh = shared.lock();
                        sh.config.commit_at_quiescence && sh.quiescence_commit()
                    };
                    if committed {
                        continue;
                    }
                    break;
                }
            };
            match ev {
                EventKind::Wake { proc, epoch } => {
                    let live = {
                        let sh = shared.lock();
                        sh.procs[proc].wake_epoch == epoch
                            && !matches!(sh.procs[proc].state, ProcState::Crashed | ProcState::Down)
                    };
                    if live {
                        resume(proc);
                    }
                }
                EventKind::Deliver { msg } => {
                    let resume_target = {
                        let mut sh = shared.lock();
                        sh.handle_delivery(msg)
                    };
                    if let Some(p) = resume_target {
                        resume(p);
                    }
                }
                EventKind::Ack { aid } => {
                    let mut sh = shared.lock();
                    sh.pending_system = sh.pending_system.saturating_sub(1);
                    sh.ack_fire(aid);
                }
                EventKind::AckTimeout { aid } => {
                    let mut sh = shared.lock();
                    sh.pending_system = sh.pending_system.saturating_sub(1);
                    sh.timeout_fire(aid);
                }
                EventKind::Restart { proc } => {
                    let mut sh = shared.lock();
                    sh.pending_system = sh.pending_system.saturating_sub(1);
                    sh.restart_fire(proc);
                }
            }
            if events.is_multiple_of(FOSSIL_SWEEP_PERIOD) {
                let mut sh = shared.lock();
                if sh.config.fossil_collection {
                    sh.fossil_sweep();
                }
            }
        }

        for tx in &resume_txs {
            let _ = tx.send(ResumeSignal::Shutdown);
        }
        for h in handles {
            let _ = h.join();
        }

        let mut sh = shared.lock();
        let mut outputs = std::mem::take(&mut sh.outputs);
        outputs.sort_by_key(|o| (o.time, o.process));
        let mut finish_times = BTreeMap::new();
        let mut unfinished = Vec::new();
        let mut errors = BTreeMap::new();
        let mut crashes = BTreeMap::new();
        for p in &sh.procs {
            match p.state {
                ProcState::Finished => {
                    if let Some(t) = p.finish_time {
                        finish_times.insert(p.pid, t);
                    }
                }
                ProcState::Crashed => {
                    let reason = p
                        .crash
                        .clone()
                        .unwrap_or_else(|| CrashReason::Panic("crashed".to_string()));
                    errors.insert(p.pid, reason.to_string());
                    crashes.insert(p.pid, reason);
                }
                _ => unfinished.push(p.pid),
            }
        }
        let mut stats = sh.stats;
        stats.engine = sh.engine.stats();
        stats.tracking = sh.engine.tracking_stats();
        stats.memory.live_intervals = sh.engine.live_interval_count() as u64;
        stats.memory.live_aids = sh.engine.live_aid_count() as u64;
        stats.memory.interval_horizon = sh.engine.interval_horizon();
        stats.memory.aid_horizon = sh.engine.aid_horizon();
        stats.memory.reclaimed_intervals = stats.engine.fossil_intervals;
        stats.memory.reclaimed_aids = stats.engine.fossil_aids;
        stats.memory.fossil_denied = sh.engine.fossil_denied_count() as u64;
        for p in &sh.procs {
            stats.memory.live_journal_entries += p.journal.live_len() as u64;
            stats.memory.reclaimed_journal_entries += p.journal.reclaimed_entries;
        }
        stats.memory.depset_cow_copies =
            hope_core::depset::cow_copies_total().saturating_sub(depset_base.0);
        stats.memory.depset_spills =
            hope_core::depset::spills_total().saturating_sub(depset_base.1);
        let gov_transitions = match sh.governor.as_mut() {
            Some(g) => {
                stats.governor = g.stats;
                std::mem::take(&mut g.transitions)
            }
            None => Vec::new(),
        };
        RunReport {
            end_time: sh.now,
            events,
            hit_limits,
            outputs,
            stats,
            finish_times,
            unfinished,
            errors,
            crashes,
            trace: std::mem::take(&mut sh.trace_log),
            races: sh
                .race_detector
                .take()
                .map(|d| d.into_races())
                .unwrap_or_default(),
            gov_transitions,
        }
    }
}

/// Per-process thread: runs (and on rollback, re-runs) the body.
fn process_wrapper(
    shared: Arc<Mutex<Shared>>,
    idx: usize,
    body: Body,
    resume_rx: Receiver<ResumeSignal>,
    yield_tx: Sender<()>,
) {
    loop {
        // Wait for the scheduler to start (or, after a completed run of the
        // body, to restart us because of a rollback).
        match resume_rx.recv() {
            Ok(ResumeSignal::Go) => {}
            Ok(ResumeSignal::Shutdown) | Err(_) => return,
        }
        loop {
            let (replay_len, charge_overhead) = {
                let mut sh = shared.lock();
                let mut charge = VirtualDuration::ZERO;
                if sh.procs[idx].rollback_pending {
                    // This body run is a rollback-induced re-execution.
                    sh.stats.replays += 1;
                    sh.procs[idx].rollback_pending = false;
                    charge = sh.config.rollback_overhead;
                }
                (sh.procs[idx].journal.len(), charge)
            };
            if !charge_overhead.is_zero() {
                // Charge checkpoint-restoration cost as an inline hold
                // before re-executing.
                {
                    let mut sh = shared.lock();
                    sh.procs[idx].state = ProcState::Holding;
                    let at = sh.now + charge_overhead;
                    sh.schedule_wake(idx, at);
                }
                let _ = yield_tx.send(());
                match resume_rx.recv() {
                    Ok(ResumeSignal::Go) => {}
                    Ok(ResumeSignal::Shutdown) | Err(_) => return,
                }
                // A deeper rollback may have struck while we were holding
                // for the restoration charge: its truncation invalidates
                // the replay length captured above, and the extra rollback
                // deserves its own replay count and restoration charge.
                // Start the restart over from the (now shorter) journal.
                let rolled_again = {
                    let sh = shared.lock();
                    sh.procs[idx].rollback_pending
                };
                if rolled_again {
                    continue;
                }
            }
            let mut ctx = Ctx::new(
                shared.clone(),
                idx,
                resume_rx.clone(),
                yield_tx.clone(),
                replay_len,
            );
            let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut ctx)));
            match outcome {
                Ok(Ok(())) => {
                    {
                        let mut sh = shared.lock();
                        sh.procs[idx].state = ProcState::Finished;
                        let now = sh.now;
                        sh.procs[idx].finish_time = Some(now);
                    }
                    let _ = yield_tx.send(());
                    break; // back to the outer wait (rollback may revive us)
                }
                Ok(Err(Signal::Rollback)) => {
                    // The rollback-pending flag (set by apply_effects for
                    // the victim, including self-rollbacks) is observed at
                    // the top of this loop, which counts the replay and
                    // charges the configured restoration overhead.
                    continue; // re-execute the body (replay + live)
                }
                Ok(Err(Signal::Shutdown)) => return,
                Err(panic) => {
                    let msg = panic_message(panic);
                    {
                        let mut sh = shared.lock();
                        sh.procs[idx].state = ProcState::Crashed;
                        sh.procs[idx].crash = Some(CrashReason::Panic(msg));
                    }
                    let _ = yield_tx.send(());
                    return;
                }
            }
        }
    }
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "process body panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use hope_sim::{Topology, VirtualDuration};

    fn ms(v: u64) -> VirtualDuration {
        VirtualDuration::from_millis(v)
    }

    #[test]
    fn empty_simulation_completes() {
        let report = Simulation::new(SimConfig::default()).run();
        assert!(report.completed());
        assert_eq!(report.events(), 0);
    }

    #[test]
    fn single_process_computes_and_finishes() {
        let mut sim = Simulation::new(SimConfig::default());
        let p = sim.spawn("solo", |ctx| {
            ctx.compute(ms(5))?;
            ctx.output("done")?;
            Ok(())
        });
        let report = sim.run();
        assert!(report.completed(), "{report}");
        assert_eq!(report.output_lines(), vec!["done"]);
        assert_eq!(report.finish_time(p).unwrap().as_millis_f64(), 5.0);
    }

    #[test]
    fn ping_pong_accumulates_latency() {
        let mut sim = Simulation::new(
            SimConfig::with_seed(3)
                .topology(Topology::uniform(hope_sim::LatencyModel::Fixed(ms(10)))),
        );
        let ponger = hope_core::ProcessId(1);
        let pinger = sim.spawn("pinger", move |ctx| {
            for i in 0..3 {
                let r = ctx.rpc(ponger, Value::Int(i))?;
                assert_eq!(r, Value::Int(i * 2));
            }
            Ok(())
        });
        sim.spawn("ponger", |ctx| {
            for _ in 0..3 {
                let req = ctx.recv()?;
                let v = req.payload.expect_int();
                ctx.reply(&req, Value::Int(v * 2))?;
            }
            Ok(())
        });
        let report = sim.run();
        assert!(report.completed(), "{report}");
        // 3 round trips × 20 ms.
        assert_eq!(report.finish_time(pinger).unwrap().as_millis_f64(), 60.0);
        assert_eq!(report.stats().messages_sent, 6);
        assert_eq!(report.stats().messages_delivered, 6);
    }

    #[test]
    fn affirmed_guess_keeps_speculative_output() {
        let mut sim = Simulation::new(SimConfig::default());
        let verifier = hope_core::ProcessId(1);
        sim.spawn("worker", move |ctx| {
            let x = ctx.aid_init()?;
            ctx.send(verifier, Value::Int(x.index() as i64))?;
            if ctx.guess(x)? {
                ctx.output("optimistic path")?;
            } else {
                ctx.output("pessimistic path")?;
            }
            Ok(())
        });
        sim.spawn("verifier", |ctx| {
            let m = ctx.recv()?;
            let aid = hope_core::AidId::from_index(m.payload.expect_int() as u64);
            ctx.compute(ms(2))?;
            ctx.affirm(aid)?;
            Ok(())
        });
        let report = sim.run();
        assert!(report.completed(), "{report}");
        assert_eq!(report.output_lines(), vec!["optimistic path"]);
        assert_eq!(report.stats().rollback_events, 0);
        assert_eq!(report.stats().engine.finalized, 1);
    }

    #[test]
    fn denied_guess_rolls_back_and_reexecutes() {
        let mut sim = Simulation::new(SimConfig::default());
        let verifier = hope_core::ProcessId(1);
        sim.spawn("worker", move |ctx| {
            let x = ctx.aid_init()?;
            ctx.send(verifier, Value::Int(x.index() as i64))?;
            if ctx.guess(x)? {
                ctx.output("optimistic path")?;
            } else {
                ctx.output("pessimistic path")?;
            }
            Ok(())
        });
        sim.spawn("verifier", |ctx| {
            let m = ctx.recv()?;
            let aid = hope_core::AidId::from_index(m.payload.expect_int() as u64);
            ctx.compute(ms(2))?;
            ctx.deny(aid)?;
            Ok(())
        });
        let report = sim.run();
        assert!(report.completed(), "{report}");
        // The speculative line was discarded; only the re-executed
        // pessimistic line committed.
        assert_eq!(report.output_lines(), vec!["pessimistic path"]);
        assert_eq!(report.stats().rollback_events, 1);
        assert_eq!(report.stats().replays, 1);
        assert_eq!(report.stats().outputs_discarded, 1);
    }

    #[test]
    fn self_deny_unwinds_inline() {
        let mut sim = Simulation::new(SimConfig::default());
        sim.spawn("solo", |ctx| {
            let x = ctx.aid_init()?;
            if ctx.guess(x)? {
                ctx.compute(ms(1))?;
                ctx.deny(x)?; // definite self-deny: rolls *us* back
                unreachable!("deny of own dependence must unwind");
            } else {
                ctx.output("took the false branch")?;
            }
            Ok(())
        });
        let report = sim.run();
        assert!(report.completed(), "{report}");
        assert_eq!(report.output_lines(), vec!["took the false branch"]);
        assert_eq!(report.stats().replays, 1);
    }

    #[test]
    fn rollback_cascades_through_messages() {
        // P0 guesses and sends to P1; P1 computes on it and sends to P2;
        // P3 denies. P0, P1, P2 all roll back and re-execute.
        let mut sim = Simulation::new(SimConfig::default());
        let p1 = hope_core::ProcessId(1);
        let p2 = hope_core::ProcessId(2);
        let p3 = hope_core::ProcessId(3);
        sim.spawn("origin", move |ctx| {
            let x = ctx.aid_init()?;
            ctx.send(p3, Value::Int(x.index() as i64))?;
            let flag = ctx.guess(x)?;
            ctx.send(p1, Value::Bool(flag))?;
            ctx.output(format!("origin: {flag}"))?;
            Ok(())
        });
        sim.spawn("middle", move |ctx| {
            let m = ctx.recv()?;
            ctx.compute(ms(1))?;
            ctx.send(p2, m.payload.clone())?;
            ctx.output(format!("middle: {}", m.payload))?;
            Ok(())
        });
        sim.spawn("leaf", |ctx| {
            let m = ctx.recv()?;
            ctx.output(format!("leaf: {}", m.payload))?;
            Ok(())
        });
        sim.spawn("judge", |ctx| {
            let m = ctx.recv()?;
            let aid = hope_core::AidId::from_index(m.payload.expect_int() as u64);
            ctx.compute(ms(5))?;
            ctx.deny(aid)?;
            Ok(())
        });
        let report = sim.run();
        assert!(report.completed(), "{report}");
        let lines = report.output_lines();
        assert!(lines.contains(&"origin: false"), "{lines:?}");
        assert!(lines.contains(&"middle: false"), "{lines:?}");
        assert!(lines.contains(&"leaf: false"), "{lines:?}");
        assert!(!lines.contains(&"origin: true"));
        assert!(report.stats().rollback_events >= 3, "{report}");
        assert!(report.stats().ghosts_dropped >= 1, "ghost copies dropped");
    }

    #[test]
    fn rollback_overhead_is_charged() {
        let overhead = ms(7);
        let run = |with_overhead: bool| {
            let cfg = if with_overhead {
                SimConfig::default().rollback_overhead(overhead)
            } else {
                SimConfig::default()
            };
            let mut sim = Simulation::new(cfg);
            let v = hope_core::ProcessId(1);
            let w = sim.spawn("worker", move |ctx| {
                let x = ctx.aid_init()?;
                ctx.send(v, Value::Int(x.index() as i64))?;
                let _ = ctx.guess(x)?;
                ctx.compute(ms(1))?;
                Ok(())
            });
            sim.spawn("verifier", |ctx| {
                let m = ctx.recv()?;
                let aid = hope_core::AidId::from_index(m.payload.expect_int() as u64);
                ctx.deny(aid)?;
                Ok(())
            });
            let report = sim.run();
            assert!(report.completed(), "{report}");
            report.finish_time(w).unwrap()
        };
        let without = run(false);
        let with = run(true);
        assert_eq!((with - without), overhead);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sim = Simulation::new(SimConfig::with_seed(99).topology(Topology::uniform(
                hope_sim::LatencyModel::Uniform {
                    lo: ms(1),
                    hi: ms(5),
                },
            )));
            let consumer = hope_core::ProcessId(1);
            sim.spawn("producer", move |ctx| {
                for _ in 0..10 {
                    let v = ctx.random_u64()? % 100;
                    ctx.send(consumer, Value::Int(v as i64))?;
                    ctx.compute(ms(1))?;
                }
                Ok(())
            });
            sim.spawn("consumer", |ctx| {
                let mut total = 0;
                for _ in 0..10 {
                    total += ctx.recv()?.payload.expect_int();
                }
                ctx.output(format!("total={total}"))?;
                Ok(())
            });
            let r = sim.run();
            (
                r.end_time(),
                r.output_lines().join(","),
                r.stats().messages_sent,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crashed_process_is_reported() {
        let mut sim = Simulation::new(SimConfig::default());
        let p = sim.spawn("bad", |_ctx| panic!("intentional test panic"));
        sim.spawn("good", |ctx| {
            ctx.compute(ms(1))?;
            Ok(())
        });
        let report = sim.run();
        assert!(!report.completed());
        assert_eq!(
            report.errors().get(&p).map(String::as_str),
            Some("intentional test panic")
        );
    }

    #[test]
    fn server_left_blocked_is_unfinished() {
        let mut sim = Simulation::new(SimConfig::default());
        let server = hope_core::ProcessId(0);
        sim.spawn("server", |ctx| loop {
            let req = ctx.recv()?;
            ctx.reply(&req, Value::Int(1))?;
        });
        sim.spawn("client", move |ctx| {
            let r = ctx.rpc(server, Value::Unit)?;
            assert_eq!(r, Value::Int(1));
            Ok(())
        });
        let report = sim.run();
        assert_eq!(report.unfinished(), &[server]);
        assert!(report.errors().is_empty());
    }

    #[test]
    fn max_events_limit_stops_runaway() {
        let cfg = SimConfig::default().with_max_events(50);
        let mut sim = Simulation::new(cfg);
        sim.spawn("spinner", |ctx| loop {
            ctx.compute(ms(1))?;
        });
        let report = sim.run();
        assert!(report.hit_limits());
        assert!(!report.completed());
    }

    #[test]
    fn free_of_detects_ordering_violation() {
        // A server asserts its handling of request A is free of the
        // client's speculation; because the client's speculative message
        // reached it first, free_of denies and both roll back.
        let mut sim = Simulation::new(SimConfig::default());
        let server = hope_core::ProcessId(1);
        sim.spawn("client", move |ctx| {
            let order = ctx.aid_init()?;
            if ctx.guess(order)? {
                // Speculatively send; the server will assert independence.
                ctx.send(server, Value::Int(order.index() as i64))?;
                ctx.output("client sent speculatively")?;
            } else {
                ctx.output("client held its message")?;
            }
            Ok(())
        });
        sim.spawn("server", |ctx| {
            let m = ctx.recv()?;
            let order = hope_core::AidId::from_index(m.payload.expect_int() as u64);
            // We are *dependent* on `order` (the tag made us guess it), so
            // this free_of denies it and rolls us back; after rollback the
            // message is a ghost and the client's re-execution sends
            // nothing, so recv blocks forever — the server ends unfinished
            // and its speculative output is discarded.
            ctx.free_of(order)?;
            ctx.output("server unreachable line")?;
            Ok(())
        });
        let report = sim.run();
        assert!(report.stats().rollback_events >= 2, "{report}");
        assert_eq!(report.output_lines(), vec!["client held its message"]);
        assert_eq!(report.unfinished(), &[server]);
        assert!(report.finish_time(hope_core::ProcessId(0)).is_some());
        assert!(report.stats().ghosts_dropped >= 1);
    }
}
