//! Exhaustive schedule checking at the [`Simulation`]/[`Ctx`] layer.
//!
//! [`check_scenario`] enumerates every inequivalent dispatch order of a
//! closure-bodied scenario and reports the set of committed outcomes it
//! can produce. This is the runtime-level counterpart of the `hope-mc`
//! machine-program checker: instead of abstract machine steps, the choice
//! points are the scheduler's own dispatch decisions — which pending
//! `Deliver`/`Wake`/`Ack`/`AckTimeout`/`Restart` event fires next — so
//! `send_reliable` retransmission races, cross-link delivery orders and
//! restart timing are all in scope, with real process bodies (closures
//! over [`Ctx`]) executing under each schedule.
//!
//! # Search strategy
//!
//! Process bodies are closures whose control state cannot be forked
//! mid-run (see [`crate::chaos`]), so the search is stateless in the
//! CHESS style: each schedule re-executes the scenario from scratch under
//! a [`ScheduleOracle`] that replays a recorded prefix of choices and
//! defaults to the first alternative beyond it. After each run the driver
//! advances the deepest choice point with an untried sibling (an odometer
//! over the schedule tree, i.e. iterative depth-first search). Scenarios
//! must therefore be deterministic given the schedule: build the same
//! `Simulation` (same seed, same bodies) on every call.
//!
//! # Reductions
//!
//! The raw ready set is reduced before it counts as a choice point, so the
//! enumeration covers only *realizable, inequivalent* orders:
//!
//! - **No-op events auto-drain.** Stale wakes (superseded epoch, or the
//!   process is crashed/down), deliveries to permanently crashed
//!   processes, acks and retransmission deadlines whose assumption is
//!   already decided, and restarts of non-down processes all dispatch
//!   without recording a choice — they change no state, so ordering them
//!   is irrelevant.
//! - **Per-link FIFO heads.** Only the earliest pending delivery on each
//!   directed link is eligible: the production network never reorders a
//!   link (`link_last` clamping), so a non-head delivery firing first is
//!   unrealizable.
//! - **Singleton ready sets** dispatch without recording a choice.
//!
//! Fire times are clamped monotone when the oracle picks out of deadline
//! order (see `Shared::next_event`), so every explored schedule
//! corresponds to a genuine latency assignment. Outcome fingerprints
//! deliberately exclude virtual-time values for the same reason.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use hope_core::{AidState, ProcessId};
use hope_sim::VirtualTime;
use parking_lot::Mutex;

use crate::oracle::ScheduleOracle;
use crate::scheduler::Simulation;
use crate::shared::{EventKind, ProcState, Shared};
use crate::stats::RunReport;

/// Budget for [`check_scenario`].
#[derive(Debug, Clone)]
pub struct SimMcConfig {
    /// Maximum number of schedules (full scenario re-executions) to run
    /// before giving up with [`SimCompleteness::BudgetExceeded`].
    pub max_schedules: usize,
}

impl Default for SimMcConfig {
    fn default() -> Self {
        SimMcConfig {
            max_schedules: 4096,
        }
    }
}

/// Did the search cover the whole reduced schedule space?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimCompleteness {
    /// Every reduced schedule was executed: the reported outcome set is
    /// exactly the set of outcomes the scenario can produce (under the
    /// scenario's fixed latency seed, modulo the documented reductions).
    Exhausted,
    /// The schedule budget ran out with untried branches remaining; the
    /// outcome set is a sample, not a proof.
    BudgetExceeded,
}

impl SimCompleteness {
    /// `true` for [`SimCompleteness::Exhausted`].
    pub fn is_exhausted(&self) -> bool {
        matches!(self, SimCompleteness::Exhausted)
    }
}

/// What one schedule committed, with timing deliberately excluded: the
/// oracle re-times events (see `Shared::next_event`), so only
/// schedule-independent facts — which lines were committed by whom, who
/// finished — are comparable across schedules.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SimOutcome {
    /// Committed output lines per process, in commit order.
    pub outputs: BTreeMap<ProcessId, Vec<String>>,
    /// Processes whose body returned an error, with the error text.
    pub errors: BTreeMap<ProcessId, String>,
    /// Processes that panicked or were killed without recovery.
    pub crashed: Vec<ProcessId>,
    /// Processes still blocked or down at the end of the run.
    pub unfinished: Vec<ProcessId>,
    /// The run stopped at `max_events`/`max_virtual_time` instead of
    /// quiescing (always a red flag under model checking).
    pub hit_limits: bool,
}

impl SimOutcome {
    fn of(report: &RunReport) -> Self {
        let mut outputs: BTreeMap<ProcessId, Vec<String>> = BTreeMap::new();
        for o in report.outputs() {
            outputs.entry(o.process).or_default().push(o.line.clone());
        }
        SimOutcome {
            outputs,
            errors: report.errors().clone(),
            crashed: report.crash_reasons().keys().copied().collect(),
            unfinished: report.unfinished().to_vec(),
            hit_limits: report.hit_limits(),
        }
    }
}

/// Result of [`check_scenario`].
#[derive(Debug, Clone)]
pub struct SimMcReport {
    /// Schedules executed (scenario re-runs).
    pub schedules: usize,
    /// Branching choice points encountered, summed over all runs.
    pub choice_points: usize,
    /// Deepest number of branching choice points in any single run.
    pub max_depth: usize,
    /// Every distinct committed outcome observed.
    pub outcomes: BTreeSet<SimOutcome>,
    /// Whether the reduced schedule space was exhausted.
    pub completeness: SimCompleteness,
    /// On budget exhaustion: a lower bound on the unexplored branches
    /// still on the decision stack (0 when exhausted).
    pub frontier_remaining: usize,
    /// Runs that hit `max_events`/`max_virtual_time` instead of quiescing.
    pub limit_runs: usize,
}

impl SimMcReport {
    /// `true` if every explored schedule quiesced with the same committed
    /// outcome — the schedule-space agreement the HOPE semantics promises
    /// for fault-free runs of well-formed scenarios.
    pub fn agreed(&self) -> bool {
        self.outcomes.len() <= 1 && self.limit_runs == 0
    }

    /// Fraction of the reduced schedule space explored: 1.0 when
    /// exhausted, otherwise `schedules / (schedules + frontier)` — an
    /// upper bound, since the frontier is itself a lower bound.
    pub fn explored_fraction(&self) -> f64 {
        if self.completeness.is_exhausted() {
            return 1.0;
        }
        let total = self.schedules + self.frontier_remaining;
        if total == 0 {
            return 1.0;
        }
        self.schedules as f64 / total as f64
    }
}

/// Choice state shared between the driver and the oracle of one run.
struct Trail {
    /// Decisions to replay: `prescribed[k]` is the alternative to take at
    /// the `k`-th branching choice point; beyond the end, take the first.
    prescribed: Vec<usize>,
    /// Fan-out actually observed at each branching choice point this run.
    fanout: Vec<usize>,
}

struct ReplayOracle {
    trail: Arc<Mutex<Trail>>,
}

/// An event that provably changes no state when dispatched now, so
/// ordering it against anything is irrelevant and it drains for free.
fn is_noop(sh: &Shared, ev: &EventKind) -> bool {
    match *ev {
        EventKind::Wake { proc, epoch } => {
            sh.procs[proc].wake_epoch != epoch
                || matches!(sh.procs[proc].state, ProcState::Crashed | ProcState::Down)
        }
        // Only a *permanently* crashed destination makes a delivery a sure
        // loss. A `Down` process may restart first, so ordering a delivery
        // against its `Restart` stays a genuine choice.
        EventKind::Deliver { ref msg } => sh.procs[sh.idx_of(msg.to)].state == ProcState::Crashed,
        EventKind::Ack { aid } | EventKind::AckTimeout { aid } => {
            sh.engine.aid_state(aid).ok() != Some(AidState::Undecided)
        }
        EventKind::Restart { proc } => sh.procs[proc].state != ProcState::Down,
    }
}

/// The reduced ready set: seqs eligible to fire next, in deadline order.
/// Deliveries keep only the head of each directed link (the network never
/// reorders a link, so firing a non-head first is unrealizable).
fn reduced_ready(pending: &[(VirtualTime, u64, &EventKind)]) -> Vec<u64> {
    let mut links_seen: BTreeSet<(ProcessId, ProcessId)> = BTreeSet::new();
    let mut ready = Vec::new();
    for &(_, seq, ev) in pending {
        match ev {
            EventKind::Deliver { msg } => {
                if links_seen.insert((msg.from, msg.to)) {
                    ready.push(seq);
                }
            }
            _ => ready.push(seq),
        }
    }
    ready
}

impl ScheduleOracle for ReplayOracle {
    fn choose(&mut self, sh: &Shared) -> Option<u64> {
        let pending = sh.queue.pending_sorted();
        // Drain no-ops first, without recording a choice.
        for &(_, seq, ev) in &pending {
            if is_noop(sh, ev) {
                return Some(seq);
            }
        }
        let ready = reduced_ready(&pending);
        match ready.len() {
            0 => None,
            1 => Some(ready[0]),
            n => {
                let mut tr = self.trail.lock();
                let k = tr.fanout.len();
                let pick = tr.prescribed.get(k).copied().unwrap_or(0).min(n - 1);
                tr.fanout.push(n);
                Some(ready[pick])
            }
        }
    }
}

/// Exhaustively run every reduced schedule of `scenario`, or as many as
/// the budget allows. `scenario` must build the same `Simulation` on
/// every call (same config/seed, same spawn order, same bodies): each
/// schedule is a fresh re-execution, deviating only in dispatch order.
pub fn check_scenario(cfg: &SimMcConfig, scenario: impl Fn() -> Simulation) -> SimMcReport {
    let mut prescribed: Vec<usize> = Vec::new();
    let mut outcomes = BTreeSet::new();
    let mut schedules = 0usize;
    let mut choice_points = 0usize;
    let mut max_depth = 0usize;
    let mut limit_runs = 0usize;
    loop {
        let trail = Arc::new(Mutex::new(Trail {
            prescribed: prescribed.clone(),
            fanout: Vec::new(),
        }));
        let mut sim = scenario();
        sim.set_schedule_oracle(Box::new(ReplayOracle {
            trail: trail.clone(),
        }));
        let report = sim.run();
        schedules += 1;
        if report.hit_limits() {
            limit_runs += 1;
        }
        outcomes.insert(SimOutcome::of(&report));
        let fanout = std::mem::take(&mut trail.lock().fanout);
        choice_points += fanout.len();
        max_depth = max_depth.max(fanout.len());

        // Odometer: this run's decisions are `prescribed` padded with 0s;
        // advance the deepest one with an untried sibling and truncate.
        let mut decisions: Vec<usize> = (0..fanout.len())
            .map(|k| prescribed.get(k).copied().unwrap_or(0))
            .collect();
        let next = loop {
            let Some(d) = decisions.pop() else { break None };
            if d + 1 < fanout[decisions.len()] {
                decisions.push(d + 1);
                break Some(decisions);
            }
        };
        match next {
            None => {
                return SimMcReport {
                    schedules,
                    choice_points,
                    max_depth,
                    outcomes,
                    completeness: SimCompleteness::Exhausted,
                    frontier_remaining: 0,
                    limit_runs,
                };
            }
            Some(d) => {
                if schedules >= cfg.max_schedules {
                    // `d` itself plus every untried sibling above it.
                    let frontier = 1 + d
                        .iter()
                        .enumerate()
                        .map(|(k, &v)| fanout[k] - 1 - v)
                        .sum::<usize>();
                    return SimMcReport {
                        schedules,
                        choice_points,
                        max_depth,
                        outcomes,
                        completeness: SimCompleteness::BudgetExceeded,
                        frontier_remaining: frontier,
                        limit_runs,
                    };
                }
                prescribed = d;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::value::Value;
    use hope_sim::VirtualDuration;

    fn ms(v: u64) -> VirtualDuration {
        VirtualDuration::from_millis(v)
    }

    /// Two senders racing into one receiver: the cross-link delivery
    /// order is genuinely nondeterministic, so the checker must branch
    /// and find both receive orders — and nothing else.
    fn two_sender_race(config: SimConfig) -> Simulation {
        let mut sim = Simulation::new(config);
        sim.spawn("receiver", |ctx| {
            let a = ctx.recv()?;
            let b = ctx.recv()?;
            ctx.output(format!(
                "got {} then {}",
                a.payload.expect_int(),
                b.payload.expect_int()
            ))?;
            Ok(())
        });
        let receiver = ProcessId(0);
        sim.spawn("alice", move |ctx| {
            ctx.send(receiver, Value::Int(1))?;
            Ok(())
        });
        sim.spawn("bob", move |ctx| {
            ctx.send(receiver, Value::Int(2))?;
            Ok(())
        });
        sim
    }

    #[test]
    fn exhausts_two_sender_race_and_finds_both_orders() {
        let report = check_scenario(&SimMcConfig::default(), || {
            two_sender_race(SimConfig::with_seed(7))
        });
        assert!(report.completeness.is_exhausted(), "{report:?}");
        assert_eq!(report.limit_runs, 0);
        assert!(report.schedules >= 2, "must branch: {report:?}");
        let lines: BTreeSet<String> = report
            .outcomes
            .iter()
            .flat_map(|o| o.outputs.values().flatten().cloned())
            .collect();
        assert!(
            lines.contains("got 1 then 2") && lines.contains("got 2 then 1"),
            "both receive orders must be reachable: {lines:?}"
        );
        assert_eq!(report.frontier_remaining, 0);
        assert!((report.explored_fraction() - 1.0).abs() < f64::EPSILON);
    }

    /// A single-link pipeline still branches on the initial wake order
    /// (which body starts first is a real interleaving), but the per-link
    /// FIFO-head reduction guarantees messages cannot be reordered, so
    /// every schedule must commit the identical outcome.
    #[test]
    fn single_link_pipeline_agrees_across_all_schedules() {
        let report = check_scenario(&SimMcConfig::default(), || {
            let mut sim = Simulation::new(SimConfig::with_seed(3));
            sim.spawn("receiver", |ctx| {
                assert_eq!(ctx.recv()?.payload, Value::Int(1));
                assert_eq!(ctx.recv()?.payload, Value::Int(2));
                ctx.output("in order")?;
                Ok(())
            });
            let receiver = ProcessId(0);
            sim.spawn("sender", move |ctx| {
                ctx.send(receiver, Value::Int(1))?;
                ctx.send(receiver, Value::Int(2))?;
                Ok(())
            });
            sim
        });
        assert!(report.completeness.is_exhausted(), "{report:?}");
        assert!(report.agreed(), "{report:?}");
        let only = report.outcomes.first().expect("one outcome");
        assert_eq!(
            only.outputs.get(&ProcessId(0)).map(Vec::as_slice),
            Some(&["in order".to_string()][..])
        );
    }

    /// `send_reliable` schedules an `Ack` and an `AckTimeout` for the same
    /// assumption: the checker must explore both orders (ack first —
    /// delivered; deadline first — denied, roll back, retransmit) and the
    /// retry loop must still converge on every committed outcome being
    /// "delivered".
    #[test]
    fn exhausts_send_reliable_retransmission_race() {
        // The retransmission tree is unbounded in principle (every
        // deadline-first branch spawns a fresh attempt with its own
        // ack/deadline race), so a virtual-time horizon makes it finite:
        // branches that keep losing the race run out of time and are
        // recorded as `hit_limits` outcomes rather than explored forever.
        let report = check_scenario(&SimMcConfig::default(), || {
            let mut sim = Simulation::new(
                SimConfig::with_seed(11)
                    .with_ack_timeout(ms(10))
                    .with_max_virtual_time(VirtualTime::from_nanos(ms(35).as_nanos())),
            );
            sim.spawn("receiver", |ctx| {
                let m = ctx.recv()?;
                ctx.output(format!("received {}", m.payload.expect_int()))?;
                Ok(())
            });
            let receiver = ProcessId(0);
            sim.spawn("sender", move |ctx| {
                ctx.send_reliable(receiver, Value::Int(9))?;
                ctx.output("sender done")?;
                Ok(())
            });
            sim
        });
        assert!(report.completeness.is_exhausted(), "{report:?}");
        assert!(
            report.schedules >= 2,
            "ack/deadline race must branch: {report:?}"
        );
        // Every schedule that quiesced within the horizon must have
        // converged on exactly one delivery (duplicates suppressed) and a
        // finished sender — the point of the reliable-send protocol.
        let mut quiesced = 0;
        for o in report.outcomes.iter().filter(|o| !o.hit_limits) {
            quiesced += 1;
            assert!(o.unfinished.is_empty(), "quiesced schedule: {o:?}");
            assert_eq!(
                o.outputs.get(&ProcessId(0)).map(Vec::as_slice),
                Some(&["received 9".to_string()][..]),
                "retransmission must converge on delivery: {o:?}"
            );
        }
        assert!(quiesced >= 1, "some schedule must quiesce: {report:?}");
    }

    /// Model checking composes with fossil collection: collection is
    /// transparent (it reclaims storage, never outcomes), so the explored
    /// schedule tree and outcome set must be bit-identical with it on.
    #[test]
    fn fossil_collection_preserves_schedule_tree_and_outcomes() {
        let run = |fossil: bool| {
            check_scenario(&SimMcConfig::default(), move || {
                two_sender_race(SimConfig::with_seed(7).with_fossil_collection(fossil))
            })
        };
        let plain = run(false);
        let collected = run(true);
        assert_eq!(plain.schedules, collected.schedules);
        assert_eq!(plain.choice_points, collected.choice_points);
        assert_eq!(plain.max_depth, collected.max_depth);
        assert_eq!(plain.outcomes, collected.outcomes);
        assert!(collected.completeness.is_exhausted());
    }

    /// Sharding the engine must be invisible to the model checker: the
    /// sequential path keeps control flow and id allocation identical for
    /// any shard count, so the schedule tree, its choice points, and every
    /// outcome fingerprint match a 1-shard run — and the search still
    /// exhausts. This is what licenses running `check_scenario` on sharded
    /// configurations without a single-shard restriction.
    #[test]
    fn sharded_engine_preserves_schedule_tree_and_outcomes() {
        let run = |shards: usize| {
            check_scenario(&SimMcConfig::default(), move || {
                two_sender_race(SimConfig::with_seed(7).with_engine_shards(shards))
            })
        };
        let single = run(1);
        for shards in [2, 4] {
            let sharded = run(shards);
            assert_eq!(single.schedules, sharded.schedules);
            assert_eq!(single.choice_points, sharded.choice_points);
            assert_eq!(single.max_depth, sharded.max_depth);
            assert_eq!(single.outcomes, sharded.outcomes);
            assert!(sharded.completeness.is_exhausted());
        }
    }

    /// The optimism governor must be invisible to every model-checked
    /// verdict: its holds and conservative waits ride ordinary
    /// epoch-guarded wakes (realizable events), so while the *schedule
    /// tree* legitimately changes shape (held guesses add wake events),
    /// the **outcome set** — committed outputs, errors, crashes,
    /// unfinished processes — must be identical to the ungoverned run, and
    /// the search must still exhaust. This is the model-checked half of
    /// the transparency claim (`chaos::governor_sweep` is the fault-space
    /// half).
    #[test]
    fn governor_preserves_outcome_set() {
        // Three guess rounds with the middle one denied: real deny
        // pressure, so the aggressive governor (throttle from the first
        // observed outcome, conservative after the deny) exercises holds
        // *and* converted waits across the explored schedules.
        let scenario = |gov: Option<crate::governor::GovernorConfig>| {
            move || {
                let mut cfg = SimConfig::with_seed(5);
                cfg.governor = gov.clone();
                let mut sim = Simulation::new(cfg);
                let verifier = ProcessId(1);
                sim.spawn("guesser", move |ctx| {
                    for round in 0..3 {
                        let aid = ctx.aid_init()?;
                        ctx.send(verifier, Value::Int(aid.index() as i64))?;
                        if ctx.guess(aid)? {
                            ctx.output(format!("round {round}: yes"))?;
                        } else {
                            ctx.output(format!("round {round}: no"))?;
                        }
                    }
                    Ok(())
                });
                sim.spawn("verifier", |ctx| {
                    for round in 0..3 {
                        let m = ctx.recv()?;
                        let aid = hope_core::AidId::from_index(m.payload.expect_int() as u64);
                        if round == 1 {
                            ctx.deny(aid)?;
                        } else {
                            ctx.affirm(aid)?;
                        }
                    }
                    Ok(())
                });
                sim
            }
        };
        let plain = check_scenario(&SimMcConfig::default(), scenario(None));
        let gov = crate::governor::GovernorConfig::default()
            .with_window(4)
            .with_min_samples(1)
            .with_thresholds(0, 900)
            .with_hold(ms(1));
        let governed = check_scenario(&SimMcConfig::default(), scenario(Some(gov)));
        assert!(plain.completeness.is_exhausted(), "{plain:?}");
        assert!(governed.completeness.is_exhausted(), "{governed:?}");
        assert_eq!(
            plain.outcomes, governed.outcomes,
            "the governor may reshape schedules, never outcomes"
        );
        assert!(plain.agreed() && governed.agreed());
    }

    /// The budget path: a scenario with more schedules than allowed
    /// reports `BudgetExceeded`, a nonzero frontier, and a fraction < 1.
    #[test]
    fn budget_exceeded_reports_frontier_fraction() {
        let cfg = SimMcConfig { max_schedules: 1 };
        let report = check_scenario(&cfg, || two_sender_race(SimConfig::with_seed(7)));
        assert_eq!(report.completeness, SimCompleteness::BudgetExceeded);
        assert_eq!(report.schedules, 1);
        assert!(report.frontier_remaining >= 1);
        assert!(report.explored_fraction() < 1.0);
    }
}
