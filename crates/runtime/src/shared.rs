//! The scheduler-shared state: engine, processes, event queue, network.
//!
//! Exactly one process thread runs at any moment (the scheduler enforces a
//! strict rendezvous), so the single [`parking_lot::Mutex`] around
//! [`Shared`] is uncontended; it exists to satisfy the borrow checker
//! across threads, not to provide parallelism.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use hope_analysis::dynamic::RaceDetector;
use hope_core::{Action, AidId, AidState, Effect, Engine, IntervalId, ProcessId, RuntimeObserver};
use hope_sim::{EventQueue, LinkVerdict, SimRng, VirtualDuration, VirtualTime};

use crate::config::SimConfig;
use crate::governor::Governor;
use crate::journal::{Entry, Journal};
use crate::message::{Mailbox, Message, MsgKind};
use crate::oracle::SchedOracleSlot;
use crate::stats::{CrashReason, OutputLine, RunStats};
use crate::value::Value;

/// What a scheduler event does when it fires.
#[derive(Debug, Clone)]
// `Deliver` holds the `Message` (and its tag's inline `DepSet`) by value:
// boxing it would cost an allocation per send on the simulator's hottest
// queue, and almost every queued event is a `Deliver` anyway.
#[allow(clippy::large_enum_variant)]
pub(crate) enum EventKind {
    /// Resume process `proc` if `epoch` is still current.
    Wake { proc: usize, epoch: u64 },
    /// Place a message into its destination mailbox.
    Deliver { msg: Message },
    /// A reliable delivery reached its destination: affirm the sender's
    /// "delivered" assumption (if still undecided).
    Ack { aid: AidId },
    /// A reliable send's retransmission deadline: deny the "delivered"
    /// assumption (if still undecided), rolling the sender back into its
    /// retry loop.
    AckTimeout { aid: AidId },
    /// Bring a fault-killed process back up (journal-prefix recovery).
    Restart { proc: usize },
}

/// Scheduler-visible process state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProcState {
    /// Currently executing (at most one process at a time).
    Running,
    /// Waiting for a `Wake` (inside `compute`, or awaiting first resume).
    Holding,
    /// Waiting for a deliverable message.
    BlockedRecv,
    /// Body returned `Ok(())` (may still be rolled back and re-run).
    Finished,
    /// Body panicked; the process is dead.
    Crashed,
    /// Fault-killed with a scheduled restart: deliveries are lost and
    /// wakes suppressed until the `Restart` event brings it back.
    Down,
}

#[derive(Debug)]
pub(crate) struct ProcShared {
    pub(crate) pid: ProcessId,
    pub(crate) name: String,
    pub(crate) state: ProcState,
    pub(crate) mailbox: Mailbox,
    pub(crate) journal: Journal,
    /// Set when a rollback truncated the journal while the process was not
    /// running; the process's next resume observes it and unwinds.
    pub(crate) rollback_pending: bool,
    /// Only the `Wake` carrying the current epoch is honoured; scheduling a
    /// new wake invalidates older ones.
    pub(crate) wake_epoch: u64,
    pub(crate) rng: SimRng,
    pub(crate) finish_time: Option<VirtualTime>,
    pub(crate) crash: Option<CrashReason>,
    /// Next logical sequence number for `send_reliable` (allocation is
    /// journaled, so replays reuse the recorded number).
    pub(crate) next_reliable: u64,
    /// `(journal position of the AidInit entry, aid)` for every AID this
    /// body created, in journal order. The kill path denies open ones from
    /// here instead of scanning the journal — whose prefix fossil
    /// collection may have reclaimed. Suffix-pruned on rollback in step
    /// with the journal; decided entries are dropped at collection time
    /// (a kill only ever denies undecided AIDs), so it stays bounded.
    pub(crate) own_aids: Vec<(usize, AidId)>,
    /// Absolute journal positions of live [`Entry::Snapshot`]s, ascending.
    /// Fossil collection truncates the journal prefix back to the newest
    /// one at or below the process's speculative frontier.
    pub(crate) snapshots: Vec<usize>,
    /// The body called [`Ctx::restore`](crate::Ctx::restore), so its
    /// journal has a resume entry point and prefix truncation is safe.
    pub(crate) restorable: bool,
}

/// The boxed form of an installed observer callback.
pub(crate) type ObserverFn = Box<dyn FnMut(ProcessId, &Action, &[Effect]) + Send>;

/// The installed runtime observer, if any. A newtype so [`Shared`] can
/// keep deriving `Debug` around the unprintable closure.
pub(crate) struct ObserverSlot(pub(crate) Option<ObserverFn>);

impl std::fmt::Debug for ObserverSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "ObserverSlot(set)"
        } else {
            "ObserverSlot(unset)"
        })
    }
}

#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) engine: Engine,
    pub(crate) procs: Vec<ProcShared>,
    pub(crate) queue: EventQueue<EventKind>,
    pub(crate) now: VirtualTime,
    pub(crate) config: SimConfig,
    pub(crate) net_rng: SimRng,
    /// Last delivery time per directed link, for FIFO clamping.
    pub(crate) link_last: HashMap<(u32, u32), VirtualTime>,
    pub(crate) next_msg_id: u64,
    pub(crate) next_mail_seq: u64,
    /// Output buffered per speculative interval (released on finalize,
    /// discarded on rollback).
    pub(crate) pending_output: BTreeMap<IntervalId, Vec<OutputLine>>,
    pub(crate) outputs: Vec<OutputLine>,
    pub(crate) stats: RunStats,
    pub(crate) trace_log: Vec<String>,
    /// Engine process id of the quiescence-commit oracle, once created.
    pub(crate) oracle: Option<ProcessId>,
    /// Reported every executed HOPE action (see `Simulation::set_observer`).
    pub(crate) observer: ObserverSlot,
    /// Online race detector, present iff [`SimConfig::detect_races`] was
    /// set; drained into [`RunReport::races`](crate::RunReport::races) at
    /// run end.
    pub(crate) race_detector: Option<RaceDetector>,
    /// Dedicated RNG stream for fault verdicts, seeded from the plan's own
    /// seed so a given plan injects the same faults under any master seed.
    pub(crate) fault_rng: SimRng,
    /// Engine process id of the fault injector (acks, timeouts, kills),
    /// lazily registered like the quiescence oracle. It guesses nothing,
    /// so its affirms and denies are always definite.
    pub(crate) injector: Option<ProcessId>,
    /// Reliable deliveries already accepted, keyed by (sender, logical
    /// seq); duplicates are suppressed (but still acked).
    pub(crate) seen_reliable: HashSet<(ProcessId, u64)>,
    /// AIDs denied *by fault injection* (timeouts and kills) — consulted by
    /// the ghost-drop paths to attribute ghosts to faults.
    pub(crate) fault_denied: BTreeSet<AidId>,
    /// Queued `Ack`/`AckTimeout`/`Restart` events not yet fired. Unlike
    /// `Wake`/`Deliver`, these change outcomes even after every body has
    /// returned (an ack commits buffered output; a timeout rolls a
    /// finished sender back), so the scheduler must not declare quiescence
    /// while any remain.
    pub(crate) pending_system: u64,
    /// Schedule oracle intercepting the dispatch-order choice point (model
    /// checking; see [`crate::mc`]). Empty in production runs, which then
    /// pay one `Option` check per event in [`Shared::next_event`].
    pub(crate) sched_oracle: SchedOracleSlot,
    /// The optimism governor, present iff
    /// [`SimConfig::with_governor`](crate::SimConfig) was set. Ungoverned
    /// runs pay one `Option` check per guess.
    pub(crate) governor: Option<Governor>,
}

impl Shared {
    pub(crate) fn new(config: SimConfig) -> Self {
        let net_rng = SimRng::new(config.seed).fork(u64::MAX);
        let fault_seed = config.faults.as_ref().map_or(config.seed, |p| p.seed());
        let fault_rng = SimRng::new(fault_seed).fork(0xFA17);
        let mut engine = Engine::with_shards(config.engine_shards.max(1));
        engine.set_invariant_checking(config.check_engine_invariants);
        let race_detector = config.detect_races.then(RaceDetector::new);
        let governor = config.governor.clone().map(Governor::new);
        Shared {
            engine,
            procs: Vec::new(),
            queue: EventQueue::new(),
            now: VirtualTime::ZERO,
            config,
            net_rng,
            link_last: HashMap::new(),
            next_msg_id: 0,
            next_mail_seq: 0,
            pending_output: BTreeMap::new(),
            outputs: Vec::new(),
            stats: RunStats::default(),
            trace_log: Vec::new(),
            oracle: None,
            observer: ObserverSlot(None),
            race_detector,
            fault_rng,
            injector: None,
            seen_reliable: HashSet::new(),
            fault_denied: BTreeSet::new(),
            pending_system: 0,
            sched_oracle: SchedOracleSlot(None),
            governor,
        }
    }

    /// The next event to dispatch. With no oracle installed this is exactly
    /// `queue.pop()`. With one, the oracle picks any pending event by
    /// sequence number and the event's fire time is clamped up to `now`
    /// (for deliveries the message's `delivered_at` moves with it): firing
    /// a later-deadline event early is thereby reinterpreted as the event
    /// always having been due now, i.e. an alternative latency draw, so
    /// virtual time stays monotone and every oracle schedule is an
    /// execution the production scheduler could have produced.
    pub(crate) fn next_event(&mut self) -> Option<(VirtualTime, EventKind)> {
        if self.sched_oracle.0.is_some() {
            // Take the oracle out so it can inspect `self` immutably.
            let mut orc = self.sched_oracle.0.take();
            let pick = orc.as_mut().and_then(|o| o.choose(self));
            self.sched_oracle.0 = orc;
            if let Some(seq) = pick {
                if let Some((t, mut ev)) = self.queue.remove_by_seq(seq) {
                    let t = t.max(self.now);
                    if let EventKind::Deliver { msg } = &mut ev {
                        msg.delivered_at = t;
                    }
                    return Some((t, ev));
                }
            }
        }
        self.queue.pop()
    }

    /// Report one executed action to the race detector (if configured) and
    /// the installed observer, if any.
    pub(crate) fn observe(&mut self, pid: ProcessId, action: &Action, effects: &[Effect]) {
        if let Some(det) = self.race_detector.as_mut() {
            RuntimeObserver::observe(det, pid, action, effects);
        }
        if let Some(f) = self.observer.0.as_mut() {
            f(pid, action, effects);
        }
    }

    /// The quiescence commit oracle (see
    /// [`SimConfig::commit_at_quiescence`](crate::SimConfig)): a definite
    /// engine-level process that affirms every still-open assumption.
    /// Returns `true` if anything was decided (the caller keeps running so
    /// the cascades — finalizations, IHD denies, rollbacks — settle).
    pub(crate) fn quiescence_commit(&mut self) -> bool {
        let oracle = *self
            .oracle
            .get_or_insert_with(|| self.engine.register_process());
        let open = self.engine.open_aids();
        if open.is_empty() {
            return false;
        }
        self.trace(|| {
            format!(
                "quiescence oracle affirms {} open assumption(s)",
                open.len()
            )
        });
        let mut any = false;
        for x in open {
            match self.engine.affirm(oracle, x) {
                Ok(fx) => {
                    any = true;
                    // The oracle is never a rollback victim: it guesses
                    // nothing. usize::MAX can match no process index.
                    let rolled = self.apply_effects(usize::MAX, &fx);
                    debug_assert!(!rolled);
                }
                // A cascade from an earlier affirm (an IHD deny) may have
                // consumed it in the meantime.
                Err(hope_core::Error::AidConsumed(_)) => {}
                Err(e) => unreachable!("oracle affirm cannot fail otherwise: {e}"),
            }
        }
        any
    }

    /// The fault injector's engine process id (registered on first use).
    /// Like the oracle it guesses nothing, so its decisions are definite
    /// and it can never be a rollback victim.
    pub(crate) fn injector(&mut self) -> ProcessId {
        *self
            .injector
            .get_or_insert_with(|| self.engine.register_process())
    }

    /// Place `msg` into its destination mailbox (reliable messages are
    /// deduplicated and acked first); returns the destination index if it
    /// was blocked on `recv` and should be resumed.
    pub(crate) fn handle_delivery(&mut self, msg: Message) -> Option<usize> {
        let p = self.idx_of(msg.to);
        if matches!(self.procs[p].state, ProcState::Crashed | ProcState::Down) {
            if self.config.faults.is_some() {
                self.stats.faults.lost_to_down += 1;
                let (id, to) = (msg.id, msg.to);
                self.trace(|| format!("FAULT m{id} lost: {to} is down"));
            }
            return None;
        }
        if let MsgKind::Reliable { seq, aid } = msg.kind {
            let fresh = self.seen_reliable.insert((msg.from, seq));
            // Ack even duplicates: the original's ack may have been lost,
            // and the retransmitting sender needs its assumption affirmed.
            self.schedule_ack(&msg, aid);
            if !fresh {
                self.stats.faults.dupes_suppressed += 1;
                let (id, from, to) = (msg.id, msg.from, msg.to);
                self.trace(|| format!("dedup: reliable m{id} {from} -> {to} suppressed"));
                return None;
            }
        }
        self.stats.messages_delivered += 1;
        let (id, from, to) = (msg.id, msg.from, msg.to);
        self.trace(|| format!("deliver m{id} {from} -> {to}"));
        self.procs[p].mailbox.insert(msg.mail_key(), msg);
        (self.procs[p].state == ProcState::BlockedRecv).then_some(p)
    }

    /// Schedule the delivery ack for a reliable message: an engine-level
    /// affirm of the sender's "delivered" assumption, travelling the
    /// reverse link (and subject to its faults — minus duplication, which
    /// is harmless for an idempotent affirm and therefore not modelled).
    fn schedule_ack(&mut self, msg: &Message, aid: AidId) {
        let (src, dst) = (msg.to, msg.from);
        let verdict = match &self.config.faults {
            Some(plan) => plan.verdict(src.0, dst.0, self.now, &mut self.fault_rng),
            None => LinkVerdict::Deliver {
                extra_delay: VirtualDuration::ZERO,
                duplicate: false,
            },
        };
        let extra = match verdict {
            LinkVerdict::Drop => {
                self.stats.faults.ack_drops += 1;
                let id = msg.id;
                self.trace(|| format!("FAULT ack for m{id} dropped"));
                return;
            }
            LinkVerdict::Deliver { extra_delay, .. } => extra_delay,
        };
        let latency = self.config.topology.sample(src.0, dst.0, &mut self.net_rng);
        self.stats.faults.acks += 1;
        let at = self.now + latency + extra;
        self.pending_system += 1;
        self.queue.push(at, EventKind::Ack { aid });
    }

    /// An ack arrived: affirm the "delivered" assumption if still open.
    pub(crate) fn ack_fire(&mut self, aid: AidId) {
        if self.engine.aid_state(aid).ok() != Some(AidState::Undecided) {
            return;
        }
        let injector = self.injector();
        match self.engine.affirm(injector, aid) {
            Ok(fx) => {
                self.trace(|| format!("ack: delivered({aid}) affirmed"));
                let rolled = self.apply_effects(usize::MAX, &fx);
                debug_assert!(!rolled);
            }
            Err(hope_core::Error::AidConsumed(_)) => {}
            Err(e) => unreachable!("injector affirm cannot fail otherwise: {e}"),
        }
    }

    /// A reliable send's retransmission deadline passed with the
    /// "delivered" assumption still open: deny it, rolling the sender back
    /// into its retry loop.
    pub(crate) fn timeout_fire(&mut self, aid: AidId) {
        if self.engine.aid_state(aid).ok() != Some(AidState::Undecided) {
            return;
        }
        let injector = self.injector();
        match self.engine.deny(injector, aid) {
            Ok(fx) => {
                self.stats.faults.timeout_denies += 1;
                self.fault_denied.insert(aid);
                self.trace(|| format!("FAULT timeout: delivered({aid}) denied"));
                let rolled = self.apply_effects(usize::MAX, &fx);
                debug_assert!(!rolled);
            }
            // A speculative affirm consumed it; its fate now rides on the
            // affirmer's own assumptions, which is strictly better informed
            // than a timeout.
            Err(hope_core::Error::AidConsumed(_)) => {}
            Err(e) => unreachable!("injector deny cannot fail otherwise: {e}"),
        }
    }

    /// Apply a fault-plan kill: deny the victim's own still-open
    /// assumptions (its in-flight guesses die with it — dependents roll
    /// back, its unsent suffix becomes ghosts), then freeze it. With
    /// `restart_after` the process comes back [`ProcState::Down`]-time
    /// later and recovers by replaying its surviving journal prefix — the
    /// paper's recovery story executed by the semantics. Assumptions the
    /// victim merely *inherited* stay with their owners: killing a
    /// dependent must not forge a deny of someone else's guess.
    pub(crate) fn kill_process(&mut self, victim: usize, restart_after: Option<VirtualDuration>) {
        if matches!(
            self.procs[victim].state,
            ProcState::Crashed | ProcState::Down
        ) {
            return;
        }
        self.stats.faults.kills += 1;
        let pid = self.procs[victim].pid;
        self.trace(|| format!("FAULT kill {pid} (restart after {restart_after:?})"));
        // The victim's created AIDs in journal order (the mirror survives
        // journal-prefix truncation; collection already dropped decided
        // ones, which the loop below would skip anyway).
        let own: Vec<AidId> = self.procs[victim]
            .own_aids
            .iter()
            .map(|&(_, a)| a)
            .collect();
        let injector = self.injector();
        for aid in own {
            if self.engine.aid_state(aid).ok() != Some(AidState::Undecided) {
                continue;
            }
            match self.engine.deny(injector, aid) {
                Ok(fx) => {
                    self.stats.faults.crash_denies += 1;
                    self.fault_denied.insert(aid);
                    let rolled = self.apply_effects(usize::MAX, &fx);
                    debug_assert!(!rolled);
                }
                Err(hope_core::Error::AidConsumed(_)) => {}
                Err(e) => unreachable!("injector deny cannot fail otherwise: {e}"),
            }
        }
        // Freeze the victim. The epoch bump invalidates any wake the deny
        // cascade just scheduled for it; a fully-definite victim suffers
        // pure downtime (its journal doubles as a stable log).
        self.procs[victim].wake_epoch += 1;
        match restart_after {
            Some(delay) => {
                self.procs[victim].state = ProcState::Down;
                let at = self.now + delay;
                self.pending_system += 1;
                self.queue.push(at, EventKind::Restart { proc: victim });
            }
            None => {
                self.procs[victim].state = ProcState::Crashed;
                self.procs[victim].crash = Some(CrashReason::FaultKill);
            }
        }
    }

    /// Bring a killed process back up: crash-restart recovery. The body
    /// re-runs from the top with the surviving journal prefix replayed
    /// (free and deterministic); the engine already treated the lost
    /// suffix as a rollback when the kill's denies cascaded.
    pub(crate) fn restart_fire(&mut self, proc: usize) {
        if self.procs[proc].state != ProcState::Down {
            return;
        }
        self.stats.faults.restarts += 1;
        let pid = self.procs[proc].pid;
        self.trace(|| format!("FAULT restart {pid}: recovering from journal prefix"));
        self.procs[proc].state = ProcState::Holding;
        let now = self.now;
        self.schedule_wake(proc, now);
    }

    /// One fossil-collection sweep (see
    /// [`SimConfig::fossil_collection`](crate::SimConfig)): reclaim every
    /// engine record at or below the commit horizon, truncate each
    /// restorable process's journal prefix back to its newest snapshot at
    /// or below its speculative frontier, and prune the per-process
    /// bookkeeping that mirrors the journal. Transparent by construction —
    /// committed outputs, rollbacks and fault statistics are bit-identical
    /// with collection on or off (the chaos and differential suites assert
    /// it) — so *when* the scheduler calls this can never change a run's
    /// outcome, only its memory footprint.
    pub(crate) fn fossil_sweep(&mut self) {
        let sweep = self.engine.collect_fossils();
        if sweep.intervals > 0 || sweep.aids > 0 {
            self.trace(|| {
                format!(
                    "fossil sweep: {} interval(s) and {} aid(s) reclaimed \
                     (horizon A{}/X{})",
                    sweep.intervals, sweep.aids, sweep.interval_horizon, sweep.aid_horizon
                )
            });
        }
        for p in 0..self.procs.len() {
            // A kill only denies *undecided* AIDs, so decided ones can
            // leave the mirror; this is what keeps it bounded on long runs.
            let mut own = std::mem::take(&mut self.procs[p].own_aids);
            own.retain(|&(_, a)| self.engine.aid_state(a).ok() == Some(AidState::Undecided));
            self.procs[p].own_aids = own;

            if !self.procs[p].restorable || self.procs[p].snapshots.is_empty() {
                continue; // no resume entry point: keep the whole journal
            }
            // The farthest back any rollback can rewind this process; a
            // fully definite history frees the whole journal for
            // truncation (up to its newest snapshot).
            let pid = self.procs[p].pid;
            let frontier = self
                .engine
                .speculative_frontier(pid)
                .expect("process is registered");
            let safe = frontier.map_or(self.procs[p].journal.len(), |c| c.0 as usize);
            let target = self.procs[p].snapshots.iter().rev().find(|&&s| s <= safe);
            if let Some(&t) = target {
                let n = self.procs[p].journal.truncate_prefix(t);
                if n > 0 {
                    // The snapshot at `t` is the new base entry; older
                    // snapshot positions now point into reclaimed space.
                    self.procs[p].snapshots.retain(|&s| s >= t);
                    self.trace(|| {
                        format!("{pid}: journal prefix reclaimed ({n} entries, base now {t})")
                    });
                }
            }
        }
    }

    /// Append a trace line (no-op unless tracing is configured).
    pub(crate) fn trace(&mut self, line: impl FnOnce() -> String) {
        if self.config.trace {
            let entry = format!("[{}] {}", self.now, line());
            self.trace_log.push(entry);
        }
    }

    pub(crate) fn idx_of(&self, pid: ProcessId) -> usize {
        let idx = pid.0 as usize;
        debug_assert!(idx < self.procs.len(), "foreign pid {pid}");
        idx
    }

    /// Schedule a wake for `proc` at `at`, invalidating earlier wakes.
    pub(crate) fn schedule_wake(&mut self, proc: usize, at: VirtualTime) {
        self.procs[proc].wake_epoch += 1;
        let epoch = self.procs[proc].wake_epoch;
        self.queue.push(at, EventKind::Wake { proc, epoch });
    }

    /// Build and dispatch a message from `from_idx`; returns the message id.
    /// `kind_of` receives the freshly allocated message id so RPC requests
    /// can use it as their call id.
    pub(crate) fn send_message_with(
        &mut self,
        from_idx: usize,
        to: ProcessId,
        kind_of: impl FnOnce(u64) -> MsgKind,
        payload: Value,
    ) -> u64 {
        let from_pid = self.procs[from_idx].pid;
        let tag = self
            .engine
            .dependence_tag(from_pid)
            .expect("sender is registered");
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        let kind = kind_of(id);
        self.stats.messages_sent += 1;
        // The fault plan rules on every send; a plan-free run always
        // delivers cleanly. Note the verdict draws from `fault_rng`, not
        // `net_rng`, so injecting faults never perturbs latency sampling.
        let verdict = match &self.config.faults {
            Some(plan) => plan.verdict(from_pid.0, to.0, self.now, &mut self.fault_rng),
            None => LinkVerdict::Deliver {
                extra_delay: VirtualDuration::ZERO,
                duplicate: false,
            },
        };
        let latency = self
            .config
            .topology
            .sample(from_pid.0, to.0, &mut self.net_rng)
            + self.config.tracking_overhead;
        let (extra_delay, duplicate) = match verdict {
            LinkVerdict::Drop => {
                self.stats.faults.drops += 1;
                self.trace(|| format!("FAULT drop m{id} {from_pid} -> {to}"));
                return id; // sent, never delivered
            }
            LinkVerdict::Deliver {
                extra_delay,
                duplicate,
            } => (extra_delay, duplicate),
        };
        if !extra_delay.is_zero() {
            self.stats.faults.delay_spikes += 1;
        }
        let link = (from_pid.0, to.0);
        let mut t_d = self.now + latency + extra_delay;
        if let Some(&last) = self.link_last.get(&link) {
            if t_d < last {
                t_d = last; // per-link FIFO: never overtake
            }
        }
        self.link_last.insert(link, t_d);
        let seq = self.next_mail_seq;
        self.next_mail_seq += 1;
        let msg = Message {
            id,
            from: from_pid,
            to,
            kind,
            payload,
            tag,
            delivered_at: t_d,
            seq,
        };
        if duplicate {
            // The injected copy travels independently (own latency draw)
            // but still respects per-link FIFO.
            self.stats.faults.dupes += 1;
            let extra_latency = self
                .config
                .topology
                .sample(from_pid.0, to.0, &mut self.net_rng)
                + self.config.tracking_overhead;
            let mut t_dup = self.now + extra_latency + extra_delay;
            if t_dup < t_d {
                t_dup = t_d;
            }
            self.link_last.insert(link, t_dup.max(t_d));
            let dup_seq = self.next_mail_seq;
            self.next_mail_seq += 1;
            let mut dup = msg.clone();
            dup.delivered_at = t_dup;
            dup.seq = dup_seq;
            self.trace(|| format!("FAULT duplicate m{id} {from_pid} -> {to}"));
            self.queue.push(t_dup, EventKind::Deliver { msg: dup });
        }
        self.queue.push(t_d, EventKind::Deliver { msg });
        id
    }

    /// Apply engine effects produced by a primitive executed by
    /// `self_idx`. Returns `true` if `self_idx` itself was rolled back (the
    /// caller must unwind with [`Signal::Rollback`](crate::Signal)).
    pub(crate) fn apply_effects(&mut self, self_idx: usize, effects: &[Effect]) -> bool {
        let mut self_rolled_back = false;
        // Governed sites whose assumptions were denied in this batch, and
        // the journal entries the batch's rollbacks discarded: the denies
        // caused the cascade, so the damage is charged to them (the
        // governor's online correction of the static priors).
        let mut gov_denied: Vec<(ProcessId, u32)> = Vec::new();
        let mut gov_damage: u64 = 0;
        for e in effects {
            match e {
                Effect::Finalized { interval, process } => {
                    self.trace(|| format!("{process}: interval {interval} finalized"));
                    if let Some(mut lines) = self.pending_output.remove(interval) {
                        self.stats.outputs_released += lines.len() as u64;
                        for l in &mut lines {
                            l.committed_at = self.now;
                        }
                        self.trace(|| {
                            format!("{process}: {} output line(s) committed", lines.len())
                        });
                        self.outputs.extend(lines);
                    }
                }
                Effect::RolledBack {
                    process,
                    intervals,
                    checkpoint,
                } => {
                    self.stats.rollback_events += 1;
                    let victim = self.idx_of(*process);
                    self.trace(|| {
                        format!(
                            "{process}: ROLLBACK of {} interval(s) to journal position {}",
                            intervals.len(),
                            checkpoint.0
                        )
                    });
                    // Discard speculative output of the dead intervals.
                    for a in intervals {
                        if let Some(lines) = self.pending_output.remove(a) {
                            self.stats.outputs_discarded += lines.len() as u64;
                        }
                    }
                    // Truncate the journal at the failed guess; re-enqueue
                    // messages that had been delivered in the discarded
                    // suffix (ghost filtering re-examines them on the next
                    // receive).
                    let pos = checkpoint.0 as usize;
                    let suffix = self.procs[victim].journal.truncate(pos);
                    self.stats.truncated_entries += suffix.len() as u64;
                    gov_damage += suffix.len() as u64;
                    // A rolled-back waiter unwinds via rollback_pending; its
                    // conservative-wait registration must not fire a stale
                    // wake at it later (that would bump its epoch and cancel
                    // whatever wake its re-execution is actually holding for).
                    if let Some(gov) = self.governor.as_mut() {
                        gov.waiting.retain(|_, p| *p != victim);
                    }
                    for entry in suffix {
                        if let Entry::Recv(msg) = entry {
                            self.procs[victim].mailbox.insert(msg.mail_key(), *msg);
                        }
                    }
                    // Keep the journal mirrors in step with the truncation:
                    // AidInit and Snapshot entries in the discarded suffix
                    // are gone (re-execution re-records live ones).
                    self.procs[victim].own_aids.retain(|&(p, _)| p < pos);
                    self.procs[victim].snapshots.retain(|&p| p < pos);
                    self.procs[victim].finish_time = None;
                    // The pending flag is observed (and cleared) by the
                    // victim's wrapper when the re-execution begins; for the
                    // running process itself it also guards any further Ctx
                    // calls should the body swallow the Rollback signal.
                    self.procs[victim].rollback_pending = true;
                    if victim == self_idx {
                        self_rolled_back = true;
                    } else if self.procs[victim].state == ProcState::Down {
                        // A down process cannot resume yet; its pending
                        // Restart event will wake it, and the pending flag
                        // makes that re-execution a recovery replay.
                    } else {
                        let now = self.now;
                        self.schedule_wake(victim, now);
                    }
                }
                Effect::AidAffirmed { aid } | Effect::AidDenied { aid } => {
                    let denied = matches!(e, Effect::AidDenied { .. });
                    let now = self.now;
                    let woken = match self.governor.as_mut() {
                        Some(gov) => {
                            if let Some(key) = gov.observe_decided(*aid, denied, now) {
                                if denied {
                                    gov_denied.push(key);
                                }
                            }
                            gov.waiting.remove(aid)
                        }
                        None => None,
                    };
                    // Release a conservative waiter: its assumption is now
                    // decided, so its next guess answers definitively.
                    if let Some(p) = woken {
                        self.schedule_wake(p, now);
                    }
                }
                _ => {}
            }
        }
        if !gov_denied.is_empty() {
            let now = self.now;
            if let Some(gov) = self.governor.as_mut() {
                gov.charge_damage(&gov_denied, gov_damage, now);
            }
        }
        self_rolled_back
    }

    /// Buffer or emit one output line from `idx` (output commit).
    pub(crate) fn output(&mut self, idx: usize, line: String) {
        let pid = self.procs[idx].pid;
        let out = OutputLine {
            time: self.now,
            committed_at: self.now, // re-stamped at release if buffered
            process: pid,
            line,
        };
        match self
            .engine
            .current_interval(pid)
            .expect("process is registered")
        {
            Some(interval) => {
                self.pending_output.entry(interval).or_default().push(out);
            }
            None => {
                self.stats.outputs_released += 1;
                self.outputs.push(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hope_core::Checkpoint;
    use hope_sim::{Topology, VirtualDuration};

    fn shared_with_procs(n: usize) -> Shared {
        let mut s = Shared::new(SimConfig::default().topology(Topology::lan()));
        for i in 0..n {
            let pid = s.engine.register_process();
            s.procs.push(ProcShared {
                pid,
                name: format!("p{i}"),
                state: ProcState::Holding,
                mailbox: Mailbox::new(),
                journal: Journal::default(),
                rollback_pending: false,
                wake_epoch: 0,
                rng: SimRng::new(i as u64),
                finish_time: None,
                crash: None,
                next_reliable: 0,
                own_aids: Vec::new(),
                snapshots: Vec::new(),
                restorable: false,
            });
        }
        s
    }

    #[test]
    fn send_message_applies_latency_and_fifo() {
        let mut s = shared_with_procs(2);
        let a = s.send_message_with(0, ProcessId(1), |_| MsgKind::Plain, Value::Int(1));
        let b = s.send_message_with(0, ProcessId(1), |_| MsgKind::Plain, Value::Int(2));
        assert_ne!(a, b);
        assert_eq!(s.stats.messages_sent, 2);
        let (t1, e1) = s.queue.pop().unwrap();
        let (t2, _e2) = s.queue.pop().unwrap();
        assert_eq!(t1, VirtualTime::ZERO + VirtualDuration::from_micros(100));
        assert!(t2 >= t1, "per-link FIFO");
        match e1 {
            EventKind::Deliver { msg } => assert_eq!(msg.payload, Value::Int(1)),
            _ => panic!("expected delivery"),
        }
    }

    #[test]
    fn schedule_wake_bumps_epoch() {
        let mut s = shared_with_procs(1);
        s.schedule_wake(0, VirtualTime::ZERO);
        s.schedule_wake(0, VirtualTime::ZERO);
        assert_eq!(s.procs[0].wake_epoch, 2);
        assert_eq!(s.queue.len(), 2);
    }

    #[test]
    fn output_is_immediate_when_definite() {
        let mut s = shared_with_procs(1);
        s.output(0, "hello".into());
        assert_eq!(s.outputs.len(), 1);
        assert_eq!(s.stats.outputs_released, 1);
        assert!(s.pending_output.is_empty());
    }

    #[test]
    fn output_is_buffered_when_speculative_then_released_on_affirm() {
        let mut s = shared_with_procs(2);
        let pid0 = s.procs[0].pid;
        let x = s.engine.aid_init(pid0);
        s.engine.guess(pid0, &[x], Checkpoint(0)).unwrap();
        s.output(0, "spec".into());
        assert!(s.outputs.is_empty());
        assert_eq!(s.pending_output.len(), 1);
        let pid1 = s.procs[1].pid;
        let fx = s.engine.affirm(pid1, x).unwrap();
        let rolled = s.apply_effects(1, &fx);
        assert!(!rolled);
        assert_eq!(s.outputs.len(), 1);
        assert_eq!(s.stats.outputs_released, 1);
    }

    #[test]
    fn rollback_discards_output_truncates_journal_and_requeues_recvs() {
        let mut s = shared_with_procs(2);
        let pid0 = s.procs[0].pid;
        let x = s.engine.aid_init(pid0);
        // Journal: [Rand] then guess checkpoint at pos 1, then a Recv.
        s.procs[0].journal.push(Entry::Rand(7));
        s.engine.guess(pid0, &[x], Checkpoint(1)).unwrap();
        s.procs[0].journal.push(Entry::Guess {
            aid: x,
            value: true,
        });
        let msg = Message {
            id: 9,
            from: ProcessId(1),
            to: pid0,
            kind: MsgKind::Plain,
            payload: Value::Unit,
            tag: hope_core::Tag::new(),
            delivered_at: VirtualTime::from_nanos(5),
            seq: 3,
        };
        s.procs[0].journal.push(Entry::Recv(Box::new(msg)));
        s.output(0, "spec".into());
        let pid1 = s.procs[1].pid;
        let fx = s.engine.deny(pid1, x).unwrap();
        let rolled = s.apply_effects(1, &fx);
        assert!(!rolled);
        assert_eq!(s.procs[0].journal.len(), 1, "truncated to checkpoint");
        assert_eq!(s.procs[0].mailbox.len(), 1, "recv re-enqueued");
        assert!(s.procs[0].rollback_pending);
        assert_eq!(s.stats.outputs_discarded, 1);
        assert_eq!(s.stats.rollback_events, 1);
        assert!(!s.queue.is_empty(), "victim wake scheduled");
    }

    #[test]
    fn faulty_send_can_drop_and_duplicate() {
        use hope_sim::FaultPlan;
        let mut s = Shared::new(
            SimConfig::default()
                .topology(Topology::lan())
                .with_faults(FaultPlan::new(12).drop_rate(0.5).dupe_rate(0.5)),
        );
        for i in 0..2 {
            let pid = s.engine.register_process();
            s.procs.push(ProcShared {
                pid,
                name: format!("p{i}"),
                state: ProcState::Holding,
                mailbox: Mailbox::new(),
                journal: Journal::default(),
                rollback_pending: false,
                wake_epoch: 0,
                rng: SimRng::new(i as u64),
                finish_time: None,
                crash: None,
                next_reliable: 0,
                own_aids: Vec::new(),
                snapshots: Vec::new(),
                restorable: false,
            });
        }
        for i in 0..64 {
            s.send_message_with(0, ProcessId(1), |_| MsgKind::Plain, Value::Int(i));
        }
        assert_eq!(s.stats.messages_sent, 64);
        assert!(s.stats.faults.drops > 0, "{:?}", s.stats.faults);
        assert!(s.stats.faults.dupes > 0, "{:?}", s.stats.faults);
        // Every surviving message queued exactly once, plus one extra
        // Deliver per duplicate.
        let expected = 64 - s.stats.faults.drops + s.stats.faults.dupes;
        assert_eq!(s.queue.len() as u64, expected);
    }

    #[test]
    fn down_destination_loses_deliveries() {
        use hope_sim::FaultPlan;
        let mut s = Shared::new(SimConfig::default().with_faults(FaultPlan::new(0)));
        for i in 0..2 {
            let pid = s.engine.register_process();
            s.procs.push(ProcShared {
                pid,
                name: format!("p{i}"),
                state: ProcState::Holding,
                mailbox: Mailbox::new(),
                journal: Journal::default(),
                rollback_pending: false,
                wake_epoch: 0,
                rng: SimRng::new(i as u64),
                finish_time: None,
                crash: None,
                next_reliable: 0,
                own_aids: Vec::new(),
                snapshots: Vec::new(),
                restorable: false,
            });
        }
        s.procs[1].state = ProcState::Down;
        let msg = Message {
            id: 1,
            from: ProcessId(0),
            to: ProcessId(1),
            kind: MsgKind::Plain,
            payload: Value::Unit,
            tag: hope_core::Tag::new(),
            delivered_at: VirtualTime::from_nanos(5),
            seq: 0,
        };
        assert_eq!(s.handle_delivery(msg), None);
        assert_eq!(s.stats.faults.lost_to_down, 1);
        assert!(s.procs[1].mailbox.is_empty());
        assert_eq!(s.stats.messages_delivered, 0);
    }

    #[test]
    fn reliable_duplicates_are_suppressed_but_acked() {
        let mut s = shared_with_procs(2);
        let aid = s.engine.aid_init(s.procs[0].pid);
        let mk = |seq: u64, id: u64| Message {
            id,
            from: ProcessId(0),
            to: ProcessId(1),
            kind: MsgKind::Reliable { seq, aid },
            payload: Value::Unit,
            tag: hope_core::Tag::new(),
            delivered_at: VirtualTime::from_nanos(5),
            seq: id,
        };
        assert_eq!(s.handle_delivery(mk(7, 1)), None); // Holding, not BlockedRecv
        assert_eq!(s.procs[1].mailbox.len(), 1);
        assert_eq!(s.handle_delivery(mk(7, 2)), None);
        assert_eq!(s.procs[1].mailbox.len(), 1, "duplicate suppressed");
        assert_eq!(s.stats.faults.dupes_suppressed, 1);
        assert_eq!(s.stats.faults.acks, 2, "both copies acked");
        assert_eq!(s.stats.messages_delivered, 1);
    }

    #[test]
    fn kill_denies_own_open_aids_and_restart_revives() {
        let mut s = shared_with_procs(2);
        let pid0 = s.procs[0].pid;
        let own = s.engine.aid_init(pid0);
        s.procs[0].journal.push(Entry::AidInit(own));
        s.procs[0].own_aids.push((0, own));
        s.engine.guess(pid0, &[own], Checkpoint(1)).unwrap();
        s.procs[0].journal.push(Entry::Guess {
            aid: own,
            value: true,
        });
        s.kill_process(0, Some(VirtualDuration::from_millis(3)));
        assert_eq!(s.procs[0].state, ProcState::Down);
        assert_eq!(s.stats.faults.kills, 1);
        assert_eq!(s.stats.faults.crash_denies, 1);
        assert!(s.fault_denied.contains(&own));
        assert!(s.procs[0].rollback_pending, "own guess denied => rollback");
        assert_eq!(
            s.engine.aid_state(own).unwrap(),
            hope_core::AidState::Denied
        );
        // The queue holds the Restart event (any wakes are stale-epoch).
        let restart = std::iter::from_fn(|| s.queue.pop())
            .find(|(_, e)| matches!(e, EventKind::Restart { .. }))
            .expect("restart scheduled");
        assert_eq!(
            restart.0,
            VirtualTime::ZERO + VirtualDuration::from_millis(3)
        );
        s.restart_fire(0);
        assert_eq!(s.procs[0].state, ProcState::Holding);
        assert_eq!(s.stats.faults.restarts, 1);
    }

    #[test]
    fn kill_without_restart_is_a_fault_crash() {
        let mut s = shared_with_procs(1);
        s.kill_process(0, None);
        assert_eq!(s.procs[0].state, ProcState::Crashed);
        assert_eq!(s.procs[0].crash, Some(CrashReason::FaultKill));
        assert_eq!(s.stats.faults.crash_denies, 0, "no open aids to deny");
        // A second kill of a dead process is a no-op.
        s.kill_process(0, None);
        assert_eq!(s.stats.faults.kills, 1);
    }

    #[test]
    fn timeout_denies_open_aid_and_ack_affirms() {
        let mut s = shared_with_procs(2);
        let pid0 = s.procs[0].pid;
        let a = s.engine.aid_init(pid0);
        let b = s.engine.aid_init(pid0);
        s.ack_fire(a);
        assert_eq!(
            s.engine.aid_state(a).unwrap(),
            hope_core::AidState::Affirmed
        );
        // A later timeout for the same aid is a no-op.
        s.timeout_fire(a);
        assert_eq!(s.stats.faults.timeout_denies, 0);
        s.timeout_fire(b);
        assert_eq!(s.engine.aid_state(b).unwrap(), hope_core::AidState::Denied);
        assert_eq!(s.stats.faults.timeout_denies, 1);
        assert!(s.fault_denied.contains(&b));
    }

    #[test]
    fn self_rollback_is_reported_to_caller() {
        let mut s = shared_with_procs(1);
        let pid0 = s.procs[0].pid;
        let x = s.engine.aid_init(pid0);
        s.engine.guess(pid0, &[x], Checkpoint(0)).unwrap();
        let fx = s.engine.deny(pid0, x).unwrap(); // self-deny, definite
        let rolled = s.apply_effects(0, &fx);
        assert!(rolled);
        assert!(
            s.procs[0].rollback_pending,
            "flag set so the wrapper counts the re-execution"
        );
    }
}
