//! The scheduler-shared state: engine, processes, event queue, network.
//!
//! Exactly one process thread runs at any moment (the scheduler enforces a
//! strict rendezvous), so the single [`parking_lot::Mutex`] around
//! [`Shared`] is uncontended; it exists to satisfy the borrow checker
//! across threads, not to provide parallelism.

use std::collections::{BTreeMap, HashMap};

use hope_analysis::dynamic::RaceDetector;
use hope_core::{Action, Effect, Engine, IntervalId, ProcessId, RuntimeObserver};
use hope_sim::{EventQueue, SimRng, VirtualTime};

use crate::config::SimConfig;
use crate::journal::{Entry, Journal};
use crate::message::{Mailbox, Message, MsgKind};
use crate::stats::{OutputLine, RunStats};
use crate::value::Value;

/// What a scheduler event does when it fires.
#[derive(Debug, Clone)]
// `Deliver` holds the `Message` (and its tag's inline `DepSet`) by value:
// boxing it would cost an allocation per send on the simulator's hottest
// queue, and almost every queued event is a `Deliver` anyway.
#[allow(clippy::large_enum_variant)]
pub(crate) enum EventKind {
    /// Resume process `proc` if `epoch` is still current.
    Wake { proc: usize, epoch: u64 },
    /// Place a message into its destination mailbox.
    Deliver { msg: Message },
}

/// Scheduler-visible process state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProcState {
    /// Currently executing (at most one process at a time).
    Running,
    /// Waiting for a `Wake` (inside `compute`, or awaiting first resume).
    Holding,
    /// Waiting for a deliverable message.
    BlockedRecv,
    /// Body returned `Ok(())` (may still be rolled back and re-run).
    Finished,
    /// Body panicked; the process is dead.
    Crashed,
}

#[derive(Debug)]
pub(crate) struct ProcShared {
    pub(crate) pid: ProcessId,
    pub(crate) name: String,
    pub(crate) state: ProcState,
    pub(crate) mailbox: Mailbox,
    pub(crate) journal: Journal,
    /// Set when a rollback truncated the journal while the process was not
    /// running; the process's next resume observes it and unwinds.
    pub(crate) rollback_pending: bool,
    /// Only the `Wake` carrying the current epoch is honoured; scheduling a
    /// new wake invalidates older ones.
    pub(crate) wake_epoch: u64,
    pub(crate) rng: SimRng,
    pub(crate) finish_time: Option<VirtualTime>,
    pub(crate) error: Option<String>,
}

/// The boxed form of an installed observer callback.
pub(crate) type ObserverFn = Box<dyn FnMut(ProcessId, &Action, &[Effect]) + Send>;

/// The installed runtime observer, if any. A newtype so [`Shared`] can
/// keep deriving `Debug` around the unprintable closure.
pub(crate) struct ObserverSlot(pub(crate) Option<ObserverFn>);

impl std::fmt::Debug for ObserverSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "ObserverSlot(set)"
        } else {
            "ObserverSlot(unset)"
        })
    }
}

#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) engine: Engine,
    pub(crate) procs: Vec<ProcShared>,
    pub(crate) queue: EventQueue<EventKind>,
    pub(crate) now: VirtualTime,
    pub(crate) config: SimConfig,
    pub(crate) net_rng: SimRng,
    /// Last delivery time per directed link, for FIFO clamping.
    pub(crate) link_last: HashMap<(u32, u32), VirtualTime>,
    pub(crate) next_msg_id: u64,
    pub(crate) next_mail_seq: u64,
    /// Output buffered per speculative interval (released on finalize,
    /// discarded on rollback).
    pub(crate) pending_output: BTreeMap<IntervalId, Vec<OutputLine>>,
    pub(crate) outputs: Vec<OutputLine>,
    pub(crate) stats: RunStats,
    pub(crate) trace_log: Vec<String>,
    /// Engine process id of the quiescence-commit oracle, once created.
    pub(crate) oracle: Option<ProcessId>,
    /// Reported every executed HOPE action (see `Simulation::set_observer`).
    pub(crate) observer: ObserverSlot,
    /// Online race detector, present iff [`SimConfig::detect_races`] was
    /// set; drained into [`RunReport::races`](crate::RunReport::races) at
    /// run end.
    pub(crate) race_detector: Option<RaceDetector>,
}

impl Shared {
    pub(crate) fn new(config: SimConfig) -> Self {
        let net_rng = SimRng::new(config.seed).fork(u64::MAX);
        let mut engine = Engine::new();
        engine.set_invariant_checking(config.check_engine_invariants);
        let race_detector = config.detect_races.then(RaceDetector::new);
        Shared {
            engine,
            procs: Vec::new(),
            queue: EventQueue::new(),
            now: VirtualTime::ZERO,
            config,
            net_rng,
            link_last: HashMap::new(),
            next_msg_id: 0,
            next_mail_seq: 0,
            pending_output: BTreeMap::new(),
            outputs: Vec::new(),
            stats: RunStats::default(),
            trace_log: Vec::new(),
            oracle: None,
            observer: ObserverSlot(None),
            race_detector,
        }
    }

    /// Report one executed action to the race detector (if configured) and
    /// the installed observer, if any.
    pub(crate) fn observe(&mut self, pid: ProcessId, action: &Action, effects: &[Effect]) {
        if let Some(det) = self.race_detector.as_mut() {
            RuntimeObserver::observe(det, pid, action, effects);
        }
        if let Some(f) = self.observer.0.as_mut() {
            f(pid, action, effects);
        }
    }

    /// The quiescence commit oracle (see
    /// [`SimConfig::commit_at_quiescence`](crate::SimConfig)): a definite
    /// engine-level process that affirms every still-open assumption.
    /// Returns `true` if anything was decided (the caller keeps running so
    /// the cascades — finalizations, IHD denies, rollbacks — settle).
    pub(crate) fn quiescence_commit(&mut self) -> bool {
        let oracle = *self
            .oracle
            .get_or_insert_with(|| self.engine.register_process());
        let open = self.engine.open_aids();
        if open.is_empty() {
            return false;
        }
        self.trace(|| {
            format!(
                "quiescence oracle affirms {} open assumption(s)",
                open.len()
            )
        });
        let mut any = false;
        for x in open {
            match self.engine.affirm(oracle, x) {
                Ok(fx) => {
                    any = true;
                    // The oracle is never a rollback victim: it guesses
                    // nothing. usize::MAX can match no process index.
                    let rolled = self.apply_effects(usize::MAX, &fx);
                    debug_assert!(!rolled);
                }
                // A cascade from an earlier affirm (an IHD deny) may have
                // consumed it in the meantime.
                Err(hope_core::Error::AidConsumed(_)) => {}
                Err(e) => unreachable!("oracle affirm cannot fail otherwise: {e}"),
            }
        }
        any
    }

    /// Append a trace line (no-op unless tracing is configured).
    pub(crate) fn trace(&mut self, line: impl FnOnce() -> String) {
        if self.config.trace {
            let entry = format!("[{}] {}", self.now, line());
            self.trace_log.push(entry);
        }
    }

    pub(crate) fn idx_of(&self, pid: ProcessId) -> usize {
        let idx = pid.0 as usize;
        debug_assert!(idx < self.procs.len(), "foreign pid {pid}");
        idx
    }

    /// Schedule a wake for `proc` at `at`, invalidating earlier wakes.
    pub(crate) fn schedule_wake(&mut self, proc: usize, at: VirtualTime) {
        self.procs[proc].wake_epoch += 1;
        let epoch = self.procs[proc].wake_epoch;
        self.queue.push(at, EventKind::Wake { proc, epoch });
    }

    /// Build and dispatch a message from `from_idx`; returns the message id.
    /// `kind_of` receives the freshly allocated message id so RPC requests
    /// can use it as their call id.
    pub(crate) fn send_message_with(
        &mut self,
        from_idx: usize,
        to: ProcessId,
        kind_of: impl FnOnce(u64) -> MsgKind,
        payload: Value,
    ) -> u64 {
        let from_pid = self.procs[from_idx].pid;
        let tag = self
            .engine
            .dependence_tag(from_pid)
            .expect("sender is registered");
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        let kind = kind_of(id);
        let seq = self.next_mail_seq;
        self.next_mail_seq += 1;
        let latency = self
            .config
            .topology
            .sample(from_pid.0, to.0, &mut self.net_rng)
            + self.config.tracking_overhead;
        let link = (from_pid.0, to.0);
        let mut t_d = self.now + latency;
        if let Some(&last) = self.link_last.get(&link) {
            if t_d < last {
                t_d = last; // per-link FIFO: never overtake
            }
        }
        self.link_last.insert(link, t_d);
        let msg = Message {
            id,
            from: from_pid,
            to,
            kind,
            payload,
            tag,
            delivered_at: t_d,
            seq,
        };
        self.stats.messages_sent += 1;
        self.queue.push(t_d, EventKind::Deliver { msg });
        id
    }

    /// Apply engine effects produced by a primitive executed by
    /// `self_idx`. Returns `true` if `self_idx` itself was rolled back (the
    /// caller must unwind with [`Signal::Rollback`](crate::Signal)).
    pub(crate) fn apply_effects(&mut self, self_idx: usize, effects: &[Effect]) -> bool {
        let mut self_rolled_back = false;
        for e in effects {
            match e {
                Effect::Finalized { interval, process } => {
                    self.trace(|| format!("{process}: interval {interval} finalized"));
                    if let Some(mut lines) = self.pending_output.remove(interval) {
                        self.stats.outputs_released += lines.len() as u64;
                        for l in &mut lines {
                            l.committed_at = self.now;
                        }
                        self.trace(|| {
                            format!("{process}: {} output line(s) committed", lines.len())
                        });
                        self.outputs.extend(lines);
                    }
                }
                Effect::RolledBack {
                    process,
                    intervals,
                    checkpoint,
                } => {
                    self.stats.rollback_events += 1;
                    let victim = self.idx_of(*process);
                    self.trace(|| {
                        format!(
                            "{process}: ROLLBACK of {} interval(s) to journal position {}",
                            intervals.len(),
                            checkpoint.0
                        )
                    });
                    // Discard speculative output of the dead intervals.
                    for a in intervals {
                        if let Some(lines) = self.pending_output.remove(a) {
                            self.stats.outputs_discarded += lines.len() as u64;
                        }
                    }
                    // Truncate the journal at the failed guess; re-enqueue
                    // messages that had been delivered in the discarded
                    // suffix (ghost filtering re-examines them on the next
                    // receive).
                    let pos = checkpoint.0 as usize;
                    let suffix = self.procs[victim].journal.truncate(pos);
                    self.stats.truncated_entries += suffix.len() as u64;
                    for entry in suffix {
                        if let Entry::Recv(msg) = entry {
                            self.procs[victim].mailbox.insert(msg.mail_key(), *msg);
                        }
                    }
                    self.procs[victim].finish_time = None;
                    // The pending flag is observed (and cleared) by the
                    // victim's wrapper when the re-execution begins; for the
                    // running process itself it also guards any further Ctx
                    // calls should the body swallow the Rollback signal.
                    self.procs[victim].rollback_pending = true;
                    if victim == self_idx {
                        self_rolled_back = true;
                    } else {
                        let now = self.now;
                        self.schedule_wake(victim, now);
                    }
                }
                _ => {}
            }
        }
        self_rolled_back
    }

    /// Buffer or emit one output line from `idx` (output commit).
    pub(crate) fn output(&mut self, idx: usize, line: String) {
        let pid = self.procs[idx].pid;
        let out = OutputLine {
            time: self.now,
            committed_at: self.now, // re-stamped at release if buffered
            process: pid,
            line,
        };
        match self
            .engine
            .current_interval(pid)
            .expect("process is registered")
        {
            Some(interval) => {
                self.pending_output.entry(interval).or_default().push(out);
            }
            None => {
                self.stats.outputs_released += 1;
                self.outputs.push(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hope_core::Checkpoint;
    use hope_sim::{Topology, VirtualDuration};

    fn shared_with_procs(n: usize) -> Shared {
        let mut s = Shared::new(SimConfig::default().topology(Topology::lan()));
        for i in 0..n {
            let pid = s.engine.register_process();
            s.procs.push(ProcShared {
                pid,
                name: format!("p{i}"),
                state: ProcState::Holding,
                mailbox: Mailbox::new(),
                journal: Journal::default(),
                rollback_pending: false,
                wake_epoch: 0,
                rng: SimRng::new(i as u64),
                finish_time: None,
                error: None,
            });
        }
        s
    }

    #[test]
    fn send_message_applies_latency_and_fifo() {
        let mut s = shared_with_procs(2);
        let a = s.send_message_with(0, ProcessId(1), |_| MsgKind::Plain, Value::Int(1));
        let b = s.send_message_with(0, ProcessId(1), |_| MsgKind::Plain, Value::Int(2));
        assert_ne!(a, b);
        assert_eq!(s.stats.messages_sent, 2);
        let (t1, e1) = s.queue.pop().unwrap();
        let (t2, _e2) = s.queue.pop().unwrap();
        assert_eq!(t1, VirtualTime::ZERO + VirtualDuration::from_micros(100));
        assert!(t2 >= t1, "per-link FIFO");
        match e1 {
            EventKind::Deliver { msg } => assert_eq!(msg.payload, Value::Int(1)),
            _ => panic!("expected delivery"),
        }
    }

    #[test]
    fn schedule_wake_bumps_epoch() {
        let mut s = shared_with_procs(1);
        s.schedule_wake(0, VirtualTime::ZERO);
        s.schedule_wake(0, VirtualTime::ZERO);
        assert_eq!(s.procs[0].wake_epoch, 2);
        assert_eq!(s.queue.len(), 2);
    }

    #[test]
    fn output_is_immediate_when_definite() {
        let mut s = shared_with_procs(1);
        s.output(0, "hello".into());
        assert_eq!(s.outputs.len(), 1);
        assert_eq!(s.stats.outputs_released, 1);
        assert!(s.pending_output.is_empty());
    }

    #[test]
    fn output_is_buffered_when_speculative_then_released_on_affirm() {
        let mut s = shared_with_procs(2);
        let pid0 = s.procs[0].pid;
        let x = s.engine.aid_init(pid0);
        s.engine.guess(pid0, &[x], Checkpoint(0)).unwrap();
        s.output(0, "spec".into());
        assert!(s.outputs.is_empty());
        assert_eq!(s.pending_output.len(), 1);
        let pid1 = s.procs[1].pid;
        let fx = s.engine.affirm(pid1, x).unwrap();
        let rolled = s.apply_effects(1, &fx);
        assert!(!rolled);
        assert_eq!(s.outputs.len(), 1);
        assert_eq!(s.stats.outputs_released, 1);
    }

    #[test]
    fn rollback_discards_output_truncates_journal_and_requeues_recvs() {
        let mut s = shared_with_procs(2);
        let pid0 = s.procs[0].pid;
        let x = s.engine.aid_init(pid0);
        // Journal: [Rand] then guess checkpoint at pos 1, then a Recv.
        s.procs[0].journal.push(Entry::Rand(7));
        s.engine.guess(pid0, &[x], Checkpoint(1)).unwrap();
        s.procs[0].journal.push(Entry::Guess {
            aid: x,
            value: true,
        });
        let msg = Message {
            id: 9,
            from: ProcessId(1),
            to: pid0,
            kind: MsgKind::Plain,
            payload: Value::Unit,
            tag: hope_core::Tag::new(),
            delivered_at: VirtualTime::from_nanos(5),
            seq: 3,
        };
        s.procs[0].journal.push(Entry::Recv(Box::new(msg)));
        s.output(0, "spec".into());
        let pid1 = s.procs[1].pid;
        let fx = s.engine.deny(pid1, x).unwrap();
        let rolled = s.apply_effects(1, &fx);
        assert!(!rolled);
        assert_eq!(s.procs[0].journal.len(), 1, "truncated to checkpoint");
        assert_eq!(s.procs[0].mailbox.len(), 1, "recv re-enqueued");
        assert!(s.procs[0].rollback_pending);
        assert_eq!(s.stats.outputs_discarded, 1);
        assert_eq!(s.stats.rollback_events, 1);
        assert!(!s.queue.is_empty(), "victim wake scheduled");
    }

    #[test]
    fn self_rollback_is_reported_to_caller() {
        let mut s = shared_with_procs(1);
        let pid0 = s.procs[0].pid;
        let x = s.engine.aid_init(pid0);
        s.engine.guess(pid0, &[x], Checkpoint(0)).unwrap();
        let fx = s.engine.deny(pid0, x).unwrap(); // self-deny, definite
        let rolled = s.apply_effects(0, &fx);
        assert!(rolled);
        assert!(
            s.procs[0].rollback_pending,
            "flag set so the wrapper counts the re-execution"
        );
    }
}
