//! The chaos equivalence oracle.
//!
//! HOPE's claim is not that optimism is fast — it is that optimism is
//! *safe*: whatever the network does, cascading rollback and output commit
//! guarantee that only correct results escape. This module turns that claim
//! into an executable check. [`chaos_sweep`] runs the same program once on
//! the perfect substrate and once per seeded [`FaultPlan`], and asserts:
//!
//! 1. **Equivalence** — every faulty run commits exactly the same output
//!    lines, per process and in the same order, as the fault-free run.
//!    Faults may change *when* lines commit (retries cost time), never
//!    *what* commits.
//! 2. **Replayability** — re-running a faulty configuration reproduces a
//!    bit-identical [`RunReport`] (compared by
//!    [`RunReport::fingerprint`]), so any failing seed is a deterministic
//!    repro, not an anecdote.
//!
//! The oracle is sound only for programs whose committed output does not
//! depend on *post-rollback* randomness: rollback deliberately does not
//! rewind a process's RNG (re-drawing would let a body "un-happen" an
//! observed coin flip), so a body that commits a fresh `random_u64` after
//! being rolled back legitimately commits different bytes under faults.
//! Derive committed values from pre-fault state or message payloads.

use std::collections::BTreeMap;

use hope_core::ProcessId;
use hope_sim::FaultPlan;

use crate::config::SimConfig;
use crate::scheduler::Simulation;
use crate::stats::{FaultStats, RunReport};

/// The committed output lines of a run, grouped per process in commit
/// order, with timestamps deliberately dropped: faults move commit times,
/// and the oracle must not care.
pub fn committed_outputs(report: &RunReport) -> BTreeMap<ProcessId, Vec<String>> {
    let mut map: BTreeMap<ProcessId, Vec<String>> = BTreeMap::new();
    for o in report.outputs() {
        map.entry(o.process).or_default().push(o.line.clone());
    }
    map
}

/// One divergence found by [`chaos_sweep`].
#[derive(Debug, Clone)]
pub struct ChaosFailure {
    /// Seed of the offending [`FaultPlan`] — rerunning the sweep with just
    /// this plan reproduces the divergence exactly.
    pub seed: u64,
    /// What diverged.
    pub detail: String,
}

impl std::fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "plan seed {}: {}", self.seed, self.detail)
    }
}

/// The aggregate result of a [`chaos_sweep`].
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Number of fault plans exercised.
    pub plans: usize,
    /// Divergences found (empty when the oracle holds).
    pub failures: Vec<ChaosFailure>,
    /// Fault counters summed across all faulty runs — lets a sweep assert
    /// it actually injected something (a chaos test whose plans never fire
    /// proves nothing).
    pub faults: FaultStats,
    /// The fault-free run's committed output (the reference).
    pub baseline: BTreeMap<ProcessId, Vec<String>>,
}

impl ChaosOutcome {
    /// `true` when every faulty run matched the baseline and replayed
    /// bit-identically.
    pub fn is_ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Panic with every failing seed if the oracle found divergences.
    ///
    /// # Panics
    ///
    /// Panics when [`ChaosOutcome::is_ok`] is false.
    pub fn assert_ok(&self) {
        assert!(
            self.is_ok(),
            "chaos oracle: {}/{} fault plans diverged:\n{}",
            self.failures.len(),
            self.plans,
            self.failures
                .iter()
                .map(ChaosFailure::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

/// Run `scenario` once fault-free under `base`, then once per plan in
/// `plans` (each with [`SimConfig::with_faults`]), checking committed-output
/// equivalence and same-seed replayability. See the module docs for what
/// the oracle guarantees and the one obligation it places on scenarios.
///
/// `scenario` must build the *same program* for every configuration it is
/// given — it is called `2 + 2 × plans` times.
///
/// # Examples
///
/// ```
/// use hope_runtime::chaos::chaos_sweep;
/// use hope_runtime::{FaultPlan, SimConfig, Simulation, Value};
///
/// let outcome = chaos_sweep(
///     SimConfig::with_seed(7),
///     (0..4).map(|s| FaultPlan::new(s).drop_rate(0.3).dupe_rate(0.2)),
///     |cfg| {
///         let mut sim = Simulation::new(cfg);
///         let receiver = hope_core::ProcessId(1);
///         sim.spawn("sender", move |ctx| {
///             for i in 0..3 {
///                 ctx.send_reliable(receiver, Value::Int(i))?;
///             }
///             Ok(())
///         });
///         sim.spawn("receiver", |ctx| {
///             for expected in 0..3 {
///                 let m = ctx.recv_matching(move |m| m.payload == Value::Int(expected))?;
///                 ctx.output(format!("got {}", m.payload))?;
///             }
///             Ok(())
///         });
///         sim
///     },
/// );
/// outcome.assert_ok();
/// assert_eq!(outcome.plans, 4);
/// ```
pub fn chaos_sweep(
    base: SimConfig,
    plans: impl IntoIterator<Item = FaultPlan>,
    scenario: impl Fn(SimConfig) -> Simulation,
) -> ChaosOutcome {
    let baseline_report = scenario(base.clone()).run();
    let baseline = committed_outputs(&baseline_report);
    let mut failures = Vec::new();
    if baseline_report.hit_limits() {
        failures.push(ChaosFailure {
            seed: base.seed,
            detail: "fault-free baseline hit simulation limits".to_string(),
        });
    }
    // The baseline itself must replay: a scenario that varies across calls
    // (captured mutable state, host randomness) would fail every plan with
    // a misleading diagnosis.
    let baseline_replay = scenario(base.clone()).run();
    if baseline_replay.fingerprint() != baseline_report.fingerprint() {
        failures.push(ChaosFailure {
            seed: base.seed,
            detail: "fault-free baseline is not replayable — the scenario \
                     closure does not build the same program every call"
                .to_string(),
        });
    }
    let mut faults = FaultStats::default();
    let mut plan_count = 0;
    for plan in plans {
        plan_count += 1;
        let seed = plan.seed();
        let cfg = base.clone().with_faults(plan);
        let report = scenario(cfg.clone()).run();
        faults.merge(&report.stats().faults);
        if report.hit_limits() {
            failures.push(ChaosFailure {
                seed,
                detail: "faulty run hit simulation limits".to_string(),
            });
            continue;
        }
        let got = committed_outputs(&report);
        if got != baseline {
            failures.push(ChaosFailure {
                seed,
                detail: format!(
                    "committed output diverged from fault-free run:\n  \
                     expected: {baseline:?}\n  got:      {got:?}"
                ),
            });
        }
        let replay = scenario(cfg).run();
        if replay.fingerprint() != report.fingerprint() {
            failures.push(ChaosFailure {
                seed,
                detail: "same-seed replay produced a different RunReport \
                         fingerprint — determinism violated"
                    .to_string(),
            });
        }
    }
    ChaosOutcome {
        plans: plan_count,
        failures,
        faults,
        baseline,
    }
}

/// Run `scenario` under every scheduler seed in `seeds` and assert each
/// run commits exactly the same output lines as the run under
/// `base.seed` — the schedule-space counterpart to [`chaos_sweep`]'s
/// fault-space oracle, with the same replayability check per seed.
///
/// The scheduler's seed decides every interleaving choice the simulation
/// makes, so sweeping it samples distinct schedules of the same program.
/// This is deliberately a *sampled* complement to the `hope-mc` model
/// checker: machine programs are plain data and can be forked state-by-
/// state for exhaustive DPOR exploration, but a [`Simulation`]'s process
/// bodies are closures that cannot be cloned mid-run, so the runtime's
/// schedule coverage comes from seeds. Programs whose committed output is
/// schedule-dependent by design (racing outputs with no HOPE protocol
/// around them) will — and should — fail this sweep.
///
/// If `base` carries a [`FaultPlan`], every seeded run keeps it: the sweep
/// then checks schedule-independence *under* that fixed fault load.
pub fn schedule_sweep(
    base: SimConfig,
    seeds: impl IntoIterator<Item = u64>,
    scenario: impl Fn(SimConfig) -> Simulation,
) -> ChaosOutcome {
    let baseline_report = scenario(base.clone()).run();
    let baseline = committed_outputs(&baseline_report);
    let mut failures = Vec::new();
    if baseline_report.hit_limits() {
        failures.push(ChaosFailure {
            seed: base.seed,
            detail: "baseline schedule hit simulation limits".to_string(),
        });
    }
    let baseline_replay = scenario(base.clone()).run();
    if baseline_replay.fingerprint() != baseline_report.fingerprint() {
        failures.push(ChaosFailure {
            seed: base.seed,
            detail: "baseline schedule is not replayable — the scenario \
                     closure does not build the same program every call"
                .to_string(),
        });
    }
    let mut faults = FaultStats::default();
    let mut seed_count = 0;
    for seed in seeds {
        seed_count += 1;
        let mut cfg = base.clone();
        cfg.seed = seed;
        let report = scenario(cfg.clone()).run();
        faults.merge(&report.stats().faults);
        if report.hit_limits() {
            failures.push(ChaosFailure {
                seed,
                detail: "seeded schedule hit simulation limits".to_string(),
            });
            continue;
        }
        let got = committed_outputs(&report);
        if got != baseline {
            failures.push(ChaosFailure {
                seed,
                detail: format!(
                    "committed output diverged across schedules:\n  \
                     baseline: {baseline:?}\n  got:      {got:?}"
                ),
            });
        }
        let replay = scenario(cfg).run();
        if replay.fingerprint() != report.fingerprint() {
            failures.push(ChaosFailure {
                seed,
                detail: "same-seed replay produced a different RunReport \
                         fingerprint — determinism violated"
                    .to_string(),
            });
        }
    }
    ChaosOutcome {
        plans: seed_count,
        failures,
        faults,
        baseline,
    }
}

/// The governor transparency oracle: prove that the optimism governor
/// reshapes *when* speculation is spent, never *what* commits.
///
/// `base` must carry a governor
/// ([`SimConfig::with_governor`](crate::SimConfig)); for the fault-free
/// configuration and then for each plan in `plans`, the scenario runs once
/// with the governor stripped and once with it installed, and the two runs'
/// [`committed_outputs`] must be bit-identical. Governor-on runs also get
/// the same-seed replayability check as [`chaos_sweep`]. The returned
/// [`ChaosOutcome`]'s `baseline` is the fault-free governor-off output and
/// its `faults` aggregate the governor-on runs' counters (so callers can
/// assert the sweep actually exercised holds and conversions via
/// [`RunStats::governor`](crate::RunStats)).
///
/// # Panics
///
/// Panics if `base` has no governor configured — sweeping without one
/// would vacuously compare identical configs.
pub fn governor_sweep(
    base: SimConfig,
    plans: impl IntoIterator<Item = FaultPlan>,
    scenario: impl Fn(SimConfig) -> Simulation,
) -> ChaosOutcome {
    assert!(
        base.governor.is_some(),
        "governor_sweep needs SimConfig::with_governor on the base config"
    );
    let mut off = base.clone();
    off.governor = None;

    let mut failures = Vec::new();
    let mut faults = FaultStats::default();
    let baseline = committed_outputs(&scenario(off.clone()).run());
    let mut plan_count = 0;
    // Configuration 0 is fault-free; each plan then repeats the off/on
    // comparison under that fault load.
    let configs = std::iter::once(None).chain(plans.into_iter().map(Some));
    for plan in configs {
        let seed = plan.as_ref().map_or(base.seed, FaultPlan::seed);
        let (cfg_off, cfg_on) = match plan {
            Some(p) => {
                plan_count += 1;
                (
                    off.clone().with_faults(p.clone()),
                    base.clone().with_faults(p),
                )
            }
            None => (off.clone(), base.clone()),
        };
        let report_off = scenario(cfg_off).run();
        let report_on = scenario(cfg_on.clone()).run();
        faults.merge(&report_on.stats().faults);
        if report_off.hit_limits() || report_on.hit_limits() {
            failures.push(ChaosFailure {
                seed,
                detail: "run hit simulation limits".to_string(),
            });
            continue;
        }
        let want = committed_outputs(&report_off);
        let got = committed_outputs(&report_on);
        if got != want {
            failures.push(ChaosFailure {
                seed,
                detail: format!(
                    "governor changed committed output:\n  \
                     governor off: {want:?}\n  governor on:  {got:?}"
                ),
            });
        }
        let replay = scenario(cfg_on).run();
        if replay.fingerprint() != report_on.fingerprint() {
            failures.push(ChaosFailure {
                seed,
                detail: "same-seed governed replay produced a different \
                         RunReport fingerprint — determinism violated"
                    .to_string(),
            });
        }
    }
    ChaosOutcome {
        plans: plan_count,
        failures,
        faults,
        baseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::GovernorConfig;
    use crate::value::Value;
    use hope_sim::VirtualDuration;

    fn echo_scenario(cfg: SimConfig) -> Simulation {
        let mut sim = Simulation::new(cfg);
        let receiver = hope_core::ProcessId(1);
        sim.spawn("sender", move |ctx| {
            for i in 0..4 {
                ctx.send_reliable(receiver, Value::Int(i))?;
                ctx.compute(VirtualDuration::from_millis(1))?;
            }
            ctx.output("sender done")?;
            Ok(())
        });
        sim.spawn("receiver", |ctx| {
            for expected in 0..4 {
                let m = ctx.recv_matching(move |m| m.payload == Value::Int(expected))?;
                ctx.output(format!("got {}", m.payload))?;
            }
            Ok(())
        });
        sim
    }

    #[test]
    fn clean_sweep_is_ok_and_counts_faults() {
        let outcome = chaos_sweep(
            SimConfig::with_seed(3),
            (0..6).map(|s| FaultPlan::new(s).drop_rate(0.4).dupe_rate(0.2)),
            echo_scenario,
        );
        outcome.assert_ok();
        assert_eq!(outcome.plans, 6);
        assert!(
            outcome.faults.drops + outcome.faults.dupes > 0,
            "plans this hostile must inject something: {:?}",
            outcome.faults
        );
        assert_eq!(
            outcome
                .baseline
                .get(&hope_core::ProcessId(1))
                .unwrap()
                .len(),
            4
        );
    }

    #[test]
    fn governor_sweep_holds_under_heavy_drops() {
        // An aggressive governor (throttle from the first sample) against
        // drop-heavy plans: committed outputs must match governor-off runs
        // on every configuration.
        let gov = GovernorConfig::default()
            .with_window(4)
            .with_min_samples(1)
            .with_thresholds(100, 2000);
        let outcome = governor_sweep(
            SimConfig::with_seed(3).with_governor(gov),
            (0..4).map(|s| FaultPlan::new(s).drop_rate(0.4)),
            echo_scenario,
        );
        outcome.assert_ok();
        assert_eq!(outcome.plans, 4);
        assert!(outcome.faults.reliable_sends > 0, "{:?}", outcome.faults);
    }

    #[test]
    #[should_panic(expected = "with_governor")]
    fn governor_sweep_requires_a_governor() {
        governor_sweep(SimConfig::with_seed(3), std::iter::empty(), echo_scenario);
    }

    #[test]
    fn divergent_scenario_is_caught() {
        // A program whose committed output depends on post-rollback
        // randomness: the oracle's one excluded class. Dropping its
        // messages forces retries whose rolled-back receive draws fresh
        // randomness, so committed output differs — the sweep must say so.
        let scenario = |cfg: SimConfig| {
            let mut sim = Simulation::new(cfg);
            let receiver = hope_core::ProcessId(1);
            sim.spawn("sender", move |ctx| {
                ctx.send_reliable(receiver, Value::Int(1))?;
                // Fresh randomness after any rollback: violates the
                // oracle's obligation on purpose.
                let salt = ctx.random_u64()?;
                ctx.output(format!("salt {salt}"))?;
                Ok(())
            });
            sim.spawn("receiver", |ctx| {
                ctx.recv()?;
                Ok(())
            });
            sim
        };
        let outcome = chaos_sweep(
            SimConfig::with_seed(5),
            // Heavy drops guarantee at least one retry (timeout deny →
            // rollback past the random_u64).
            (0..8).map(|s| FaultPlan::new(s).drop_rate(0.9)),
            scenario,
        );
        assert!(
            !outcome.is_ok(),
            "a post-rollback-randomness program under heavy drops must \
             diverge; faults: {:?}",
            outcome.faults
        );
        assert!(outcome.failures[0].detail.contains("diverged"));
    }

    #[test]
    fn schedule_sweep_holds_for_protocol_respecting_programs() {
        // The echo protocol totally orders its commits (receiver matches
        // payloads in sequence), so every scheduler seed must commit the
        // same lines.
        let outcome = schedule_sweep(SimConfig::with_seed(3), 10..18, echo_scenario);
        outcome.assert_ok();
        assert_eq!(outcome.plans, 8);
        assert_eq!(
            outcome
                .baseline
                .get(&hope_core::ProcessId(1))
                .unwrap()
                .len(),
            4
        );
    }

    #[test]
    fn schedule_sweep_catches_schedule_dependent_output() {
        // Two senders race into one unordered receiver: commit order is
        // the scheduler's choice, so some seed must disagree with the
        // baseline — and the sweep must say so.
        let scenario = |cfg: SimConfig| {
            let mut sim = Simulation::new(cfg);
            let receiver = hope_core::ProcessId(2);
            for i in 0..2u32 {
                sim.spawn(format!("sender{i}"), move |ctx| {
                    // A seed-dependent delay before sending: which sender
                    // wins the race is the scheduler's coin flip.
                    let jitter = ctx.random_u64()? % 10;
                    ctx.compute(VirtualDuration::from_millis(jitter))?;
                    ctx.send_reliable(receiver, Value::Int(i64::from(i)))?;
                    Ok(())
                });
            }
            sim.spawn("receiver", |ctx| {
                for _ in 0..2 {
                    let m = ctx.recv()?;
                    ctx.output(format!("saw {}", m.payload))?;
                }
                Ok(())
            });
            sim
        };
        let outcome = schedule_sweep(SimConfig::with_seed(0), 0..32, scenario);
        assert!(
            !outcome.is_ok(),
            "an order-racy program must diverge somewhere in 32 seeds"
        );
        assert!(outcome.failures[0].detail.contains("across schedules"));
    }
}
