//! Simulation configuration.

use hope_sim::{FaultPlan, Topology, VirtualDuration, VirtualTime};

use crate::governor::GovernorConfig;

/// Configuration for a [`Simulation`](crate::Simulation).
///
/// The defaults model the paper's prototype environment loosely: a LAN
/// topology, no artificial rollback overhead, and generous safety limits.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master random seed; every run with the same seed and program is
    /// bit-identical.
    pub seed: u64,
    /// Per-link latency models.
    pub topology: Topology,
    /// Extra virtual time charged when a process resumes after rollback
    /// (models checkpoint-restoration cost; the paper's prototype restores
    /// from a state file, ours replays a journal — both cost something).
    pub rollback_overhead: VirtualDuration,
    /// Virtual time charged on the *sender* per message for HOPE dependency
    /// tagging (§7 observes the prototype "never forces a user process to
    /// wait" for tracking messages, so the default is zero; the E8 ablation
    /// sweeps it).
    pub tracking_overhead: VirtualDuration,
    /// Hard stop: no event beyond this virtual time is processed.
    pub max_virtual_time: VirtualTime,
    /// Hard stop: maximum number of scheduler events.
    pub max_events: u64,
    /// Hard stop per process: a body whose journal holds more than this
    /// many **live** entries is crashed with the typed
    /// [`CrashReason::JournalOverflow`](crate::CrashReason) (a runaway
    /// retry loop under a hostile [`FaultPlan`] would otherwise spin until
    /// `max_events`). Entries reclaimed by horizon prefix truncation (see
    /// [`fossil_collection`](SimConfig::fossil_collection)) do not count,
    /// so checkpointing bodies sustain arbitrarily long runs without
    /// tripping it.
    pub max_journal_entries: usize,
    /// Run GVT-style fossil collection: periodically compute the engine's
    /// commit horizon, reclaim every interval/AID record at or below it
    /// ([`hope_core::Engine::collect_fossils`]) and truncate each
    /// checkpointing process's journal prefix back to its newest safe
    /// [`Ctx::checkpoint`](crate::Ctx::checkpoint) snapshot — bounding
    /// memory on open-ended runs and letting crash-restart replay from the
    /// snapshot instead of step zero. Collection is *transparent*: it never
    /// changes committed outputs, only storage. Off by default so short
    /// runs keep complete histories for tracing and post-mortems.
    pub fossil_collection: bool,
    /// Run the engine's O(intervals × AIDs) structural invariant check
    /// after every transition. Invaluable when debugging a protocol,
    /// ruinous for long simulations; the engine's own test suite covers
    /// the invariants, so this defaults to off.
    pub check_engine_invariants: bool,
    /// Record a human-readable execution trace (primitive calls, message
    /// deliveries, ghost drops, rollbacks, output commits), available as
    /// [`RunReport::trace`](crate::RunReport::trace). Off by default:
    /// tracing a long run allocates a string per event.
    pub trace: bool,
    /// When the simulation quiesces (no events left), have the scheduler —
    /// which is a *definite external observer* by construction — affirm
    /// every still-open assumption and keep running until the resulting
    /// cascades settle.
    ///
    /// Rationale: by Lemma 6.3 a speculative affirm only takes effect when
    /// its issuer finalizes, so a system in which every process stays
    /// speculative (e.g. symmetric Time Warp) can never commit from
    /// within; real Time Warp solves this with GVT. This flag is that
    /// observer: at quiescence no deny can ever arrive, so surviving
    /// assumptions are vacuously safe to affirm. Off by default — it
    /// changes when (not whether) output commits, and programs with their
    /// own verifiers don't need it.
    pub commit_at_quiescence: bool,
    /// Run the online race detector
    /// ([`hope_analysis::dynamic::RaceDetector`]) over every executed HOPE
    /// action and collect its findings into
    /// [`RunReport::races`](crate::RunReport::races) at run end. The
    /// detector flags decide/decide races on one AID, sends issued under
    /// speculation that a concurrent deny already doomed, and guesses on
    /// AIDs that were concurrently decided. Off by default: it keeps a
    /// vector clock per process and inspects every action.
    pub detect_races: bool,
    /// Number of storage shards the semantics engine is built with
    /// ([`hope_core::Engine::with_shards`]). Sharding is transparent to
    /// every committed observable — the sharded-vs-unsharded differential
    /// suite asserts [`RunReport::fingerprint`](crate::RunReport) equality
    /// across shard counts — and only changes which shard's store each
    /// process's records live in, plus the cross-shard traffic counters
    /// reported (and fingerprint-masked) in
    /// [`RunStats::tracking`](crate::RunStats). Default 1.
    pub engine_shards: usize,
    /// The fault schedule, if any (see [`FaultPlan`]). `None` gives the
    /// perfect substrate: exactly-once delivery, no kills. Fault verdicts
    /// draw from a dedicated RNG stream seeded by the *plan's* seed, so
    /// the same plan injects the same faults regardless of `seed`.
    pub faults: Option<FaultPlan>,
    /// Retransmission timeout for [`Ctx::send_reliable`](crate::Ctx):
    /// the deterministic deadline by which the "delivered" assumption must
    /// be affirmed by an ack before the runtime denies it and the sender
    /// retries. The default (50 ms) comfortably covers a coast-to-coast
    /// round trip, so fault-free runs never time out spuriously.
    pub ack_timeout: VirtualDuration,
    /// Upper bound on the exponential backoff of successive
    /// [`Ctx::send_reliable`](crate::Ctx) retries (the k-th retry waits
    /// `min(ack_timeout << (k-1), ack_backoff_cap)`).
    pub ack_backoff_cap: VirtualDuration,
    /// The optimism governor, if any (see [`crate::governor`]): a per-site
    /// admission controller that throttles or fully de-speculates guess
    /// sites whose recent deny rate × damage estimate crosses the
    /// configured pressure thresholds. `None` (the default) admits every
    /// guess immediately — the ungoverned semantics. Transparent to
    /// committed outputs by construction; the
    /// [`governor_sweep`](crate::chaos::governor_sweep) oracle asserts it.
    pub governor: Option<GovernorConfig>,
}

impl SimConfig {
    /// A configuration with the given seed and otherwise default values.
    pub fn with_seed(seed: u64) -> Self {
        SimConfig {
            seed,
            ..SimConfig::default()
        }
    }

    /// Replace the topology.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Replace the rollback overhead.
    pub fn rollback_overhead(mut self, d: VirtualDuration) -> Self {
        self.rollback_overhead = d;
        self
    }

    /// Replace the per-message tracking overhead.
    pub fn tracking_overhead(mut self, d: VirtualDuration) -> Self {
        self.tracking_overhead = d;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            topology: Topology::lan(),
            rollback_overhead: VirtualDuration::ZERO,
            tracking_overhead: VirtualDuration::ZERO,
            max_virtual_time: VirtualTime::MAX,
            max_events: 10_000_000,
            max_journal_entries: 1_000_000,
            fossil_collection: false,
            check_engine_invariants: false,
            trace: false,
            commit_at_quiescence: false,
            detect_races: false,
            engine_shards: 1,
            faults: None,
            ack_timeout: VirtualDuration::from_millis(50),
            ack_backoff_cap: VirtualDuration::from_millis(400),
            governor: None,
        }
    }
}

impl SimConfig {
    /// Enable execution tracing (see [`SimConfig::trace`]).
    pub fn traced(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Enable the quiescence commit oracle (see
    /// [`SimConfig::commit_at_quiescence`]).
    pub fn commit_at_quiescence(mut self) -> Self {
        self.commit_at_quiescence = true;
        self
    }

    /// Enable or disable the online race detector (see
    /// [`SimConfig::detect_races`]).
    pub fn detect_races(mut self, on: bool) -> Self {
        self.detect_races = on;
        self
    }

    /// Install a fault schedule (see [`SimConfig::faults`]).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Replace the topology (alias of [`SimConfig::topology`], for
    /// builder-chain symmetry with the other `with_*` methods).
    pub fn with_topology(self, topology: Topology) -> Self {
        self.topology(topology)
    }

    /// Replace the rollback overhead (alias of
    /// [`SimConfig::rollback_overhead`]).
    pub fn with_rollback_overhead(self, d: VirtualDuration) -> Self {
        self.rollback_overhead(d)
    }

    /// Replace the per-message tracking overhead (alias of
    /// [`SimConfig::tracking_overhead`]).
    pub fn with_tracking_overhead(self, d: VirtualDuration) -> Self {
        self.tracking_overhead(d)
    }

    /// Replace the scheduler-event hard stop.
    pub fn with_max_events(mut self, max: u64) -> Self {
        self.max_events = max;
        self
    }

    /// Replace the virtual-time hard stop.
    pub fn with_max_virtual_time(mut self, max: VirtualTime) -> Self {
        self.max_virtual_time = max;
        self
    }

    /// Replace the per-process journal-size hard stop.
    pub fn with_max_journal_entries(mut self, max: usize) -> Self {
        self.max_journal_entries = max;
        self
    }

    /// Enable or disable fossil collection (see
    /// [`SimConfig::fossil_collection`]).
    pub fn with_fossil_collection(mut self, on: bool) -> Self {
        self.fossil_collection = on;
        self
    }

    /// Replace the engine shard count (see [`SimConfig::engine_shards`]).
    /// Clamped to at least 1.
    pub fn with_engine_shards(mut self, n: usize) -> Self {
        self.engine_shards = n.max(1);
        self
    }

    /// Replace the reliable-send retransmission timeout.
    pub fn with_ack_timeout(mut self, d: VirtualDuration) -> Self {
        self.ack_timeout = d;
        self
    }

    /// Replace the reliable-send backoff cap.
    pub fn with_ack_backoff_cap(mut self, d: VirtualDuration) -> Self {
        self.ack_backoff_cap = d;
        self
    }

    /// Install the optimism governor (see [`SimConfig::governor`]).
    pub fn with_governor(mut self, governor: GovernorConfig) -> Self {
        self.governor = Some(governor);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hope_sim::SimRng;

    #[test]
    fn defaults() {
        let c = SimConfig::default();
        assert_eq!(c.seed, 0);
        assert_eq!(c.rollback_overhead, VirtualDuration::ZERO);
        assert_eq!(c.max_virtual_time, VirtualTime::MAX);
        assert!(c.max_events > 0);
        assert!(c.max_journal_entries > 0);
        assert!(!c.fossil_collection);
        assert_eq!(c.engine_shards, 1);
        assert!(c.faults.is_none());
        assert!(c.ack_timeout < c.ack_backoff_cap);
        assert!(c.governor.is_none());
    }

    #[test]
    fn builder_methods() {
        let c = SimConfig::with_seed(9)
            .topology(Topology::coast_to_coast())
            .rollback_overhead(VirtualDuration::from_micros(50))
            .tracking_overhead(VirtualDuration::from_nanos(10));
        assert_eq!(c.seed, 9);
        assert_eq!(c.rollback_overhead, VirtualDuration::from_micros(50));
        assert_eq!(c.tracking_overhead, VirtualDuration::from_nanos(10));
        let mut rng = SimRng::new(0);
        assert_eq!(
            c.topology.sample(0, 1, &mut rng),
            VirtualDuration::from_millis(15)
        );
    }

    #[test]
    fn with_builder_methods() {
        let plan = FaultPlan::new(11).drop_rate(0.2);
        let c = SimConfig::with_seed(4)
            .with_topology(Topology::coast_to_coast())
            .with_rollback_overhead(VirtualDuration::from_micros(5))
            .with_tracking_overhead(VirtualDuration::from_nanos(1))
            .with_max_events(123)
            .with_max_virtual_time(VirtualTime::from_nanos(999))
            .with_max_journal_entries(77)
            .with_fossil_collection(true)
            .with_ack_timeout(VirtualDuration::from_millis(20))
            .with_ack_backoff_cap(VirtualDuration::from_millis(80))
            .with_engine_shards(4)
            .with_faults(plan.clone())
            .with_governor(GovernorConfig::default().with_window(32));
        assert_eq!(c.max_events, 123);
        assert_eq!(c.engine_shards, 4);
        assert_eq!(SimConfig::default().with_engine_shards(0).engine_shards, 1);
        assert_eq!(c.max_virtual_time, VirtualTime::from_nanos(999));
        assert_eq!(c.max_journal_entries, 77);
        assert!(c.fossil_collection);
        assert_eq!(c.ack_timeout, VirtualDuration::from_millis(20));
        assert_eq!(c.ack_backoff_cap, VirtualDuration::from_millis(80));
        assert_eq!(c.faults, Some(plan));
        assert_eq!(c.governor.as_ref().map(|g| g.window), Some(32));
    }
}
