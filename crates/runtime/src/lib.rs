//! # hope-runtime — speculative processes with automatic rollback
//!
//! This crate is the practical embedding of the HOPE programming model
//! (Cowan & Lutfiyya, PODC 1995): processes written as ordinary Rust
//! closures gain the four optimism primitives — `guess`, `affirm`, `deny`,
//! `free_of` — with all dependency tracking, message tagging, checkpointing
//! and cascading rollback automated, as the paper prescribes. Where the
//! authors' prototype ran on PVM, this runtime runs on a deterministic
//! virtual-time scheduler (see `hope-sim`), so every run — including every
//! rollback cascade — is exactly reproducible.
//!
//! ## The model
//!
//! * [`Simulation::spawn`] registers a process: a closure
//!   `Fn(&mut Ctx) -> Hope<()>`.
//! * [`Ctx::guess`] speculatively returns `true`; if the assumption is
//!   denied, the process **rolls back**: its journal is truncated at the
//!   guess, the body is re-executed (journal replay makes the prefix free
//!   and deterministic), and the guess returns `false`.
//! * Messages carry dependence tags automatically; receiving from a
//!   speculative sender makes the receiver speculative (implicit guess);
//!   messages from rolled-back computations are ghosts and are never
//!   delivered.
//! * [`Ctx::output`] is subject to output commit: speculative lines are
//!   buffered until their interval finalizes, and discarded on rollback.
//!
//! ## Example
//!
//! ```
//! use hope_runtime::{SimConfig, Simulation, Value};
//! use hope_sim::VirtualDuration;
//!
//! let mut sim = Simulation::new(SimConfig::with_seed(7));
//! let verifier = hope_core::ProcessId(1);
//! sim.spawn("optimist", move |ctx| {
//!     let lock_granted = ctx.aid_init()?;
//!     ctx.send(verifier, Value::Int(lock_granted.index() as i64))?;
//!     if ctx.guess(lock_granted)? {
//!         // ... proceed as if the lock were already held ...
//!         ctx.output("updated record under optimistic lock")?;
//!     } else {
//!         ctx.output("lock denied; queuing request")?;
//!     }
//!     Ok(())
//! });
//! sim.spawn("lock-manager", |ctx| {
//!     let m = ctx.recv()?;
//!     let aid = hope_core::AidId::from_index(m.payload.expect_int() as u64);
//!     ctx.compute(VirtualDuration::from_micros(10))?;
//!     ctx.affirm(aid)?; // the lock really was free
//!     Ok(())
//! });
//! let report = sim.run();
//! assert_eq!(report.output_lines(), vec!["updated record under optimistic lock"]);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
mod config;
mod ctx;
pub mod governor;
mod journal;
pub mod mc;
mod message;
mod oracle;
mod scheduler;
mod shared;
mod signal;
mod stats;
mod value;

pub use chaos::{chaos_sweep, committed_outputs, governor_sweep, ChaosFailure, ChaosOutcome};
pub use config::SimConfig;
pub use ctx::Ctx;
pub use governor::{
    GovernorConfig, GovernorMode, GovernorStats, ModeTransition, DEFAULT_GUESS_SITE,
    RELIABLE_SEND_SITE,
};
pub use mc::{check_scenario, SimCompleteness, SimMcConfig, SimMcReport, SimOutcome};
pub use message::{Message, MsgKind};
pub use scheduler::Simulation;
pub use signal::{Hope, Signal};
pub use stats::{CrashReason, FaultStats, MemoryStats, OutputLine, RunReport, RunStats};
pub use value::Value;

// Re-export the identifier types users need to talk about processes and
// assumptions, so simple programs need not depend on hope-core directly —
// and the fault-plan vocabulary, so chaos tests need not depend on
// hope-sim.
pub use hope_analysis::dynamic::{RaceKind, RaceReport};
pub use hope_core::{AidId, AidState, ProcessId};
pub use hope_sim::{FaultPlan, Kill, LinkVerdict, Partition, VirtualDuration, VirtualTime};
