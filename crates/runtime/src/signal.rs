//! Control-flow signals delivered to process bodies.
//!
//! Rollback in this runtime is *structured*: every blocking [`Ctx`] call
//! returns `Result<T, Signal>`, and a process body propagates the error with
//! `?`. When a rollback reaches a process, its next (or current) `Ctx` call
//! returns [`Signal::Rollback`]; the propagation unwinds the body, and the
//! runtime re-executes it, replaying the journal prefix so the body
//! deterministically reaches the failed guess — which now returns `false`.
//!
//! **Do not catch and swallow a [`Signal`]** inside a process body: the
//! runtime relies on the body returning promptly once a signal is raised.
//!
//! [`Ctx`]: crate::Ctx

use std::fmt;

/// Why a process body must return immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Signal {
    /// The process was rolled back: unwind so the runtime can re-execute
    /// the body from its journal.
    Rollback,
    /// The simulation is shutting down (all events drained or limits hit).
    Shutdown,
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Signal::Rollback => write!(f, "rolled back"),
            Signal::Shutdown => write!(f, "simulation shutdown"),
        }
    }
}

impl std::error::Error for Signal {}

/// Result alias for process bodies and `Ctx` operations.
pub type Hope<T> = Result<T, Signal>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(Signal::Rollback.to_string(), "rolled back");
        assert_eq!(Signal::Shutdown.to_string(), "simulation shutdown");
    }

    #[test]
    fn is_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<Signal>();
    }
}
