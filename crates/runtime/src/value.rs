//! Message payloads.
//!
//! HOPE is language-agnostic about what messages carry; the runtime uses a
//! small dynamic [`Value`] so examples and benchmarks can exchange realistic
//! payloads without making every process generic. Values are cheap to clone
//! (journaling clones them) and totally ordered (tests compare them).

use std::fmt;

/// A dynamically typed message payload.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Value {
    /// No payload.
    #[default]
    Unit,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// A string.
    Str(String),
    /// An ordered list of values.
    List(Vec<Value>),
}

impl Value {
    /// The contained integer, if this is `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The contained boolean, if this is `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The contained string, if this is `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The contained list, if this is `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }

    /// The integer, panicking with a descriptive message otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the value is not `Int`. Convenient in examples where the
    /// protocol fixes the payload shape.
    pub fn expect_int(&self) -> i64 {
        self.as_int()
            .unwrap_or_else(|| panic!("expected Int, got {self:?}"))
    }

    /// The string, panicking otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the value is not `Str`.
    pub fn expect_str(&self) -> &str {
        self.as_str()
            .unwrap_or_else(|| panic!("expected Str, got {self:?}"))
    }

    /// The list, panicking otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the value is not `List`.
    pub fn expect_list(&self) -> &[Value] {
        self.as_list()
            .unwrap_or_else(|| panic!("expected List, got {self:?}"))
    }
}

impl From<()> for Value {
    fn from(_: ()) -> Self {
        Value::Unit
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}

impl FromIterator<Value> for Value {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Value::List(iter.into_iter().collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(5i32), Value::Int(5));
        assert_eq!(Value::from(5u32), Value::Int(5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(Value::from(String::from("hi")), Value::Str("hi".into()));
        assert_eq!(Value::from(()), Value::Unit);
        let l: Value = vec![Value::Int(1), Value::Int(2)].into();
        assert_eq!(l.as_list().unwrap().len(), 2);
        let c: Value = [Value::Int(1)].into_iter().collect();
        assert_eq!(c, Value::List(vec![Value::Int(1)]));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Unit.as_int(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(1).as_bool(), None);
        assert_eq!(Value::Str("a".into()).as_str(), Some("a"));
        assert_eq!(Value::Unit.as_str(), None);
        assert_eq!(Value::Int(3).expect_int(), 3);
        assert_eq!(Value::Str("s".into()).expect_str(), "s");
        assert_eq!(Value::List(vec![Value::Unit]).expect_list(), &[Value::Unit]);
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn expect_int_panics() {
        Value::Unit.expect_int();
    }

    #[test]
    fn display() {
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Str("x".into())]).to_string(),
            "[1, x]"
        );
    }

    #[test]
    fn default_is_unit() {
        assert_eq!(Value::default(), Value::Unit);
    }
}
