//! Per-process journals: the checkpoint/rollback mechanism.
//!
//! The paper's prototype used a "simple and fairly portable" checkpoint
//! mechanism (§7). Ours is **record/replay**: every interaction a process
//! body has with the outside world (receives, guesses, AID creation, time
//! and randomness reads, sends, computes, outputs) flows through
//! [`Ctx`](crate::Ctx) and is journaled. A checkpoint (`A.PS`, Equation 1)
//! is just a journal position. Rollback truncates the journal at the failed
//! guess and re-executes the body from the top; journaled entries are
//! *replayed* — returned without side effects — so the deterministic body
//! reaches the guess point in the same state, where the re-issued guess now
//! returns `false` (Equation 24).
//!
//! This places one obligation on process bodies: **determinism given `Ctx`
//! results**. All time, randomness and communication must go through `Ctx`.
//!
//! # Prefix truncation (fossil collection)
//!
//! Journal positions are **absolute** — they never shift. When the engine's
//! commit horizon guarantees no rollback can ever reach back past a
//! journaled [`Entry::Snapshot`], the prefix before it can be reclaimed
//! with [`Journal::truncate_prefix`]: live storage shrinks, `base()` rises,
//! and replay (after a rollback *or* a crash-restart) starts at the
//! snapshot instead of at step zero. Bodies opt in via
//! [`Ctx::restore`](crate::Ctx::restore) /
//! [`Ctx::checkpoint`](crate::Ctx::checkpoint); a body that never
//! checkpoints simply keeps its whole journal.

use hope_core::AidId;
use hope_sim::VirtualDuration;

use crate::message::Message;
use crate::value::Value;

/// One journaled interaction.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Entry {
    /// `aid_init` returned this AID.
    AidInit(AidId),
    /// `guess(aid)` returned `value`.
    Guess { aid: AidId, value: bool },
    /// `affirm(aid)` was issued; `applied` is `false` when the AID was
    /// already decided and the affirm was a recorded no-op (replay returns
    /// `applied` so `try_affirm` branches identically).
    Affirm {
        /// The affirmed AID.
        aid: AidId,
        /// Whether the affirm took effect (vs. a recorded no-op).
        applied: bool,
    },
    /// `deny(aid)` was issued (replay: skip).
    Deny(AidId),
    /// `free_of(aid)` was issued (replay: skip).
    FreeOf(AidId),
    /// `compute(d)` advanced virtual time (replay: skip — the time already
    /// passed and was not rolled back).
    Compute(VirtualDuration),
    /// A message was sent (replay: skip — it is already in flight or
    /// ghost-filtered).
    Send { msg_id: u64 },
    /// A message was received; replay returns it verbatim.
    Recv(Box<Message>),
    /// `now()` read this timestamp.
    Now(hope_sim::VirtualTime),
    /// `random_u64()` drew this value.
    Rand(u64),
    /// A (possibly buffered) output line was produced (replay: skip).
    Output,
    /// A boolean engine query (e.g. `is_speculative`) observed this value.
    /// Journaled because the engine's answer at replay time may differ from
    /// the answer the body originally branched on.
    Flag(bool),
    /// `send_reliable` allocated this logical sequence number. Journaled
    /// *before* the retry loop so every retransmission — including
    /// re-executions after a rollback into the loop — reuses the same
    /// number, which is what makes receiver-side deduplication sound.
    ReliableSeq(u64),
    /// `restore()` found no snapshot to resume from (the journal still
    /// starts at step zero). Always the first entry of a restorable body's
    /// journal; fossil collection may later replace the prefix up to some
    /// [`Entry::Snapshot`], after which `restore()` replays that snapshot
    /// instead of this marker.
    Restore,
    /// `checkpoint(state)` recorded the body's resumable state. A journal
    /// prefix may be truncated exactly at a snapshot: re-execution then
    /// resumes here via [`Ctx::restore`](crate::Ctx::restore) rather than
    /// replaying from step zero.
    Snapshot(Value),
}

impl Entry {
    /// Short name for mismatch diagnostics.
    pub(crate) fn kind(&self) -> &'static str {
        match self {
            Entry::AidInit(_) => "aid_init",
            Entry::Guess { .. } => "guess",
            Entry::Affirm { .. } => "affirm",
            Entry::Deny(_) => "deny",
            Entry::FreeOf(_) => "free_of",
            Entry::Compute(_) => "compute",
            Entry::Send { .. } => "send",
            Entry::Recv(_) => "recv",
            Entry::Now(_) => "now",
            Entry::Rand(_) => "rand",
            Entry::Output => "output",
            Entry::Flag(_) => "flag",
            Entry::ReliableSeq(_) => "reliable_seq",
            Entry::Restore => "restore",
            Entry::Snapshot(_) => "snapshot",
        }
    }
}

/// A process's interaction journal.
///
/// Positions are **absolute**: entry `i` keeps the index it was pushed at
/// for the journal's whole lifetime, so `Checkpoint` tokens stay valid
/// across [prefix truncation](Journal::truncate_prefix). Only
/// `base() ..= len()` is live storage.
#[derive(Debug, Clone, Default)]
pub(crate) struct Journal {
    entries: Vec<Entry>,
    /// Absolute position of `entries[0]`: everything below was reclaimed by
    /// fossil collection.
    base: usize,
    /// Total entries ever truncated by rollback (for statistics).
    pub(crate) truncated_entries: u64,
    /// Total prefix entries reclaimed by fossil collection.
    pub(crate) reclaimed_entries: u64,
}

impl Journal {
    /// Absolute end position (total entries ever pushed and not rolled
    /// back), *including* the reclaimed prefix.
    pub(crate) fn len(&self) -> usize {
        self.base + self.entries.len()
    }

    /// Entries currently held live (post-truncation) — what
    /// [`SimConfig::max_journal_entries`](crate::SimConfig) bounds.
    pub(crate) fn live_len(&self) -> usize {
        self.entries.len()
    }

    /// Absolute position of the oldest live entry. Replay starts here.
    pub(crate) fn base(&self) -> usize {
        self.base
    }

    pub(crate) fn push(&mut self, e: Entry) {
        self.entries.push(e);
    }

    /// The entry at absolute position `i` (`None` below `base()` or past
    /// the end).
    pub(crate) fn get(&self, i: usize) -> Option<&Entry> {
        i.checked_sub(self.base).and_then(|k| self.entries.get(k))
    }

    /// Truncate to absolute position `pos`, returning the discarded suffix
    /// (oldest first) so the caller can re-enqueue its received messages.
    /// Rollback never reaches below the commit horizon, so `pos >= base()`.
    pub(crate) fn truncate(&mut self, pos: usize) -> Vec<Entry> {
        debug_assert!(pos >= self.base, "rollback below the commit horizon");
        let k = pos.saturating_sub(self.base);
        if k >= self.entries.len() {
            return Vec::new();
        }
        let suffix = self.entries.split_off(k);
        self.truncated_entries += suffix.len() as u64;
        suffix
    }

    /// Reclaim every entry below absolute position `new_base`, returning
    /// how many were dropped. The caller must guarantee no rollback or
    /// replay will ever need them — i.e. `new_base` is the position of a
    /// [`Entry::Snapshot`] at or below the process's speculative frontier.
    pub(crate) fn truncate_prefix(&mut self, new_base: usize) -> usize {
        let n = new_base.saturating_sub(self.base).min(self.entries.len());
        if n > 0 {
            self.entries.drain(..n);
            self.base += n;
            self.reclaimed_entries += n as u64;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_truncate() {
        let mut j = Journal::default();
        j.push(Entry::Rand(1));
        j.push(Entry::Rand(2));
        j.push(Entry::Rand(3));
        assert_eq!(j.len(), 3);
        assert_eq!(j.get(1), Some(&Entry::Rand(2)));
        let cut = j.truncate(1);
        assert_eq!(cut, vec![Entry::Rand(2), Entry::Rand(3)]);
        assert_eq!(j.len(), 1);
        assert_eq!(j.truncated_entries, 2);
        // Truncating beyond the end is a no-op.
        assert!(j.truncate(5).is_empty());
        assert_eq!(j.truncated_entries, 2);
    }

    #[test]
    fn prefix_truncation_keeps_positions_absolute() {
        let mut j = Journal::default();
        j.push(Entry::Restore);
        j.push(Entry::Rand(1));
        j.push(Entry::Snapshot(Value::Int(7)));
        j.push(Entry::Rand(2));
        assert_eq!(j.truncate_prefix(2), 2);
        assert_eq!(j.base(), 2);
        assert_eq!(j.len(), 4, "absolute end does not move");
        assert_eq!(j.live_len(), 2);
        // Absolute addressing survives: the snapshot is still entry 2.
        assert_eq!(j.get(1), None, "reclaimed prefix is gone");
        assert_eq!(j.get(2), Some(&Entry::Snapshot(Value::Int(7))));
        assert_eq!(j.get(3), Some(&Entry::Rand(2)));
        assert_eq!(j.reclaimed_entries, 2);
        // Idempotent at the same base; rollback still truncates the suffix
        // at absolute positions.
        assert_eq!(j.truncate_prefix(2), 0);
        let cut = j.truncate(3);
        assert_eq!(cut, vec![Entry::Rand(2)]);
        assert_eq!(j.len(), 3);
    }

    #[test]
    fn kinds() {
        assert_eq!(Entry::Rand(0).kind(), "rand");
        assert_eq!(Entry::Output.kind(), "output");
        assert_eq!(Entry::Compute(VirtualDuration::ZERO).kind(), "compute");
        assert_eq!(Entry::Send { msg_id: 0 }.kind(), "send");
        assert_eq!(Entry::ReliableSeq(1).kind(), "reliable_seq");
        assert_eq!(Entry::Restore.kind(), "restore");
        assert_eq!(Entry::Snapshot(Value::Unit).kind(), "snapshot");
    }
}
