//! Per-process journals: the checkpoint/rollback mechanism.
//!
//! The paper's prototype used a "simple and fairly portable" checkpoint
//! mechanism (§7). Ours is **record/replay**: every interaction a process
//! body has with the outside world (receives, guesses, AID creation, time
//! and randomness reads, sends, computes, outputs) flows through
//! [`Ctx`](crate::Ctx) and is journaled. A checkpoint (`A.PS`, Equation 1)
//! is just a journal position. Rollback truncates the journal at the failed
//! guess and re-executes the body from the top; journaled entries are
//! *replayed* — returned without side effects — so the deterministic body
//! reaches the guess point in the same state, where the re-issued guess now
//! returns `false` (Equation 24).
//!
//! This places one obligation on process bodies: **determinism given `Ctx`
//! results**. All time, randomness and communication must go through `Ctx`.

use hope_core::AidId;
use hope_sim::VirtualDuration;

use crate::message::Message;

/// One journaled interaction.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Entry {
    /// `aid_init` returned this AID.
    AidInit(AidId),
    /// `guess(aid)` returned `value`.
    Guess { aid: AidId, value: bool },
    /// `affirm(aid)` was issued; `applied` is `false` when the AID was
    /// already decided and the affirm was a recorded no-op (replay returns
    /// `applied` so `try_affirm` branches identically).
    Affirm {
        /// The affirmed AID.
        aid: AidId,
        /// Whether the affirm took effect (vs. a recorded no-op).
        applied: bool,
    },
    /// `deny(aid)` was issued (replay: skip).
    Deny(AidId),
    /// `free_of(aid)` was issued (replay: skip).
    FreeOf(AidId),
    /// `compute(d)` advanced virtual time (replay: skip — the time already
    /// passed and was not rolled back).
    Compute(VirtualDuration),
    /// A message was sent (replay: skip — it is already in flight or
    /// ghost-filtered).
    Send { msg_id: u64 },
    /// A message was received; replay returns it verbatim.
    Recv(Box<Message>),
    /// `now()` read this timestamp.
    Now(hope_sim::VirtualTime),
    /// `random_u64()` drew this value.
    Rand(u64),
    /// A (possibly buffered) output line was produced (replay: skip).
    Output,
    /// A boolean engine query (e.g. `is_speculative`) observed this value.
    /// Journaled because the engine's answer at replay time may differ from
    /// the answer the body originally branched on.
    Flag(bool),
    /// `send_reliable` allocated this logical sequence number. Journaled
    /// *before* the retry loop so every retransmission — including
    /// re-executions after a rollback into the loop — reuses the same
    /// number, which is what makes receiver-side deduplication sound.
    ReliableSeq(u64),
}

impl Entry {
    /// Short name for mismatch diagnostics.
    pub(crate) fn kind(&self) -> &'static str {
        match self {
            Entry::AidInit(_) => "aid_init",
            Entry::Guess { .. } => "guess",
            Entry::Affirm { .. } => "affirm",
            Entry::Deny(_) => "deny",
            Entry::FreeOf(_) => "free_of",
            Entry::Compute(_) => "compute",
            Entry::Send { .. } => "send",
            Entry::Recv(_) => "recv",
            Entry::Now(_) => "now",
            Entry::Rand(_) => "rand",
            Entry::Output => "output",
            Entry::Flag(_) => "flag",
            Entry::ReliableSeq(_) => "reliable_seq",
        }
    }
}

/// A process's interaction journal.
#[derive(Debug, Clone, Default)]
pub(crate) struct Journal {
    entries: Vec<Entry>,
    /// Total entries ever truncated (for statistics).
    pub(crate) truncated_entries: u64,
}

impl Journal {
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn push(&mut self, e: Entry) {
        self.entries.push(e);
    }

    pub(crate) fn get(&self, i: usize) -> Option<&Entry> {
        self.entries.get(i)
    }

    /// Truncate to `pos`, returning the discarded suffix (oldest first) so
    /// the caller can re-enqueue its received messages.
    pub(crate) fn truncate(&mut self, pos: usize) -> Vec<Entry> {
        if pos >= self.entries.len() {
            return Vec::new();
        }
        let suffix = self.entries.split_off(pos);
        self.truncated_entries += suffix.len() as u64;
        suffix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_truncate() {
        let mut j = Journal::default();
        j.push(Entry::Rand(1));
        j.push(Entry::Rand(2));
        j.push(Entry::Rand(3));
        assert_eq!(j.len(), 3);
        assert_eq!(j.get(1), Some(&Entry::Rand(2)));
        let cut = j.truncate(1);
        assert_eq!(cut, vec![Entry::Rand(2), Entry::Rand(3)]);
        assert_eq!(j.len(), 1);
        assert_eq!(j.truncated_entries, 2);
        // Truncating beyond the end is a no-op.
        assert!(j.truncate(5).is_empty());
        assert_eq!(j.truncated_entries, 2);
    }

    #[test]
    fn kinds() {
        assert_eq!(Entry::Rand(0).kind(), "rand");
        assert_eq!(Entry::Output.kind(), "output");
        assert_eq!(Entry::Compute(VirtualDuration::ZERO).kind(), "compute");
        assert_eq!(Entry::Send { msg_id: 0 }.kind(), "send");
        assert_eq!(Entry::ReliableSeq(1).kind(), "reliable_seq");
    }
}
