//! `Ctx`: the process-side API — HOPE primitives, messaging, virtual time.
//!
//! A process body is a closure `Fn(&mut Ctx) -> Hope<()>`. Everything the
//! body learns about the world comes through `Ctx`, which journals each
//! interaction so that rollback can re-execute the body deterministically
//! (see [`journal`](crate::journal)). The obligations on a body are:
//!
//! 1. **Determinism given `Ctx` results** — no host clocks, no global
//!    mutable state, no `rand` calls outside [`Ctx::random_u64`].
//! 2. **Propagate signals** — every fallible `Ctx` call returns
//!    [`Hope<T>`](crate::Hope); use `?` and let [`Signal`]s unwind.
//! 3. **Externally visible work goes through [`Ctx::output`]** (or happens
//!    after the assumptions it depends on are affirmed): the runtime
//!    buffers speculative output and discards it on rollback, but it cannot
//!    un-write your files.

use std::sync::Arc;

use crossbeam_channel::{Receiver, Sender};
use hope_core::{Action, AidId, Checkpoint, DecideKind, Error, ProcessId, ReceiveOutcome};
use hope_sim::{VirtualDuration, VirtualTime};
use parking_lot::Mutex;

use crate::journal::Entry;
use crate::message::{Message, MsgKind};
use crate::scheduler::ResumeSignal;
use crate::shared::{ProcState, Shared};
use crate::signal::{Hope, Signal};
use crate::value::Value;

/// The handle a process body uses to interact with the simulated world.
///
/// See the module-level documentation above for the obligations on process bodies, and
/// [`Simulation::spawn`](crate::Simulation::spawn) for how bodies are
/// installed.
#[derive(Debug)]
pub struct Ctx {
    shared: Arc<Mutex<Shared>>,
    idx: usize,
    pid: ProcessId,
    resume_rx: Receiver<ResumeSignal>,
    yield_tx: Sender<()>,
    replay_len: usize,
    cursor: usize,
}

impl Ctx {
    pub(crate) fn new(
        shared: Arc<Mutex<Shared>>,
        idx: usize,
        resume_rx: Receiver<ResumeSignal>,
        yield_tx: Sender<()>,
        replay_len: usize,
    ) -> Self {
        let pid = shared.lock().procs[idx].pid;
        Ctx {
            shared,
            idx,
            pid,
            resume_rx,
            yield_tx,
            replay_len,
            cursor: 0,
        }
    }

    /// This process's id.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// `true` while the body is replaying its journal after a rollback.
    ///
    /// Useful only for diagnostics; bodies must behave identically either
    /// way.
    pub fn replaying(&self) -> bool {
        self.cursor < self.replay_len
    }

    // ------------------------------------------------------------------
    // replay machinery
    // ------------------------------------------------------------------

    fn replay_next(&mut self) -> Option<Entry> {
        if self.cursor >= self.replay_len {
            return None;
        }
        let sh = self.shared.lock();
        let e = sh.procs[self.idx]
            .journal
            .get(self.cursor)
            .expect("replay cursor within journal")
            .clone();
        drop(sh);
        self.cursor += 1;
        Some(e)
    }

    fn diverged(&self, expected: &str, got: &Entry) -> ! {
        panic!(
            "replay divergence in {}: body issued `{expected}` but the journal \
             recorded `{}` at position {} — process bodies must be \
             deterministic given Ctx results",
            self.pid,
            got.kind(),
            self.cursor - 1,
        )
    }

    fn park(&mut self, state: ProcState) -> Hope<()> {
        {
            let mut sh = self.shared.lock();
            sh.procs[self.idx].state = state;
        }
        let _ = self.yield_tx.send(());
        match self.resume_rx.recv() {
            Ok(ResumeSignal::Go) => {
                let sh = self.shared.lock();
                if sh.procs[self.idx].rollback_pending {
                    Err(Signal::Rollback)
                } else {
                    Ok(())
                }
            }
            Ok(ResumeSignal::Shutdown) | Err(_) => Err(Signal::Shutdown),
        }
    }

    // ------------------------------------------------------------------
    // HOPE primitives
    // ------------------------------------------------------------------

    /// Create a fresh assumption identifier (the paper's `aid_init`).
    ///
    /// # Errors
    ///
    /// Returns a [`Signal`] only on shutdown (never blocks otherwise).
    pub fn aid_init(&mut self) -> Hope<AidId> {
        if let Some(e) = self.replay_next() {
            match e {
                Entry::AidInit(aid) => return Ok(aid),
                other => self.diverged("aid_init", &other),
            }
        }
        let mut sh = self.shared.lock();
        let aid = sh.engine.aid_init(self.pid);
        sh.procs[self.idx].journal.push(Entry::AidInit(aid));
        Ok(aid)
    }

    /// `guess(x)`: begin computing under the assumption identified by `x`.
    ///
    /// Returns `true` immediately (speculatively). If the assumption is
    /// later denied, the process is rolled back to this point, the body is
    /// re-executed, and this call returns `false` (§5.1, Equation 24).
    ///
    /// # Errors
    ///
    /// [`Signal::Rollback`]/[`Signal::Shutdown`] propagated from the
    /// runtime.
    pub fn guess(&mut self, aid: AidId) -> Hope<bool> {
        if let Some(e) = self.replay_next() {
            match e {
                Entry::Guess { aid: a, value } if a == aid => return Ok(value),
                other => self.diverged("guess", &other),
            }
        }
        let mut sh = self.shared.lock();
        let pos = sh.procs[self.idx].journal.len() as u64;
        let (outcome, fx) = sh
            .engine
            .guess(self.pid, &[aid], Checkpoint(pos))
            .expect("guess on engine-owned ids");
        let value = outcome.value();
        let pid = self.pid;
        sh.trace(|| format!("{pid}: guess({aid}) -> {value}"));
        sh.procs[self.idx].journal.push(Entry::Guess { aid, value });
        let rolled = sh.apply_effects(self.idx, &fx);
        sh.observe(pid, &Action::Guess { aid, value }, &fx);
        drop(sh);
        if rolled {
            return Err(Signal::Rollback);
        }
        Ok(value)
    }

    /// `affirm(x)`: assert the assumption was correct (§5.2).
    ///
    /// Re-affirming an AID that was already decided (which happens
    /// legitimately in re-executed code after a conservative deny) is a
    /// recorded no-op rather than an error.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn affirm(&mut self, aid: AidId) -> Hope<()> {
        self.primitive(aid, Prim::Affirm)
    }

    /// `deny(x)`: assert the assumption was wrong, rolling back every
    /// dependent computation (§5.3). If the caller itself depends on `x`,
    /// this call returns `Err(Signal::Rollback)` — propagate it.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn deny(&mut self, aid: AidId) -> Hope<()> {
        self.primitive(aid, Prim::Deny)
    }

    /// `free_of(x)`: assert this computation is not, and never will be,
    /// causally dependent on `x` (§5.4). If the constraint is already
    /// violated the runtime denies `x`, rolling this process back.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn free_of(&mut self, aid: AidId) -> Hope<()> {
        self.primitive(aid, Prim::FreeOf)
    }

    fn primitive(&mut self, aid: AidId, prim: Prim) -> Hope<()> {
        if let Some(e) = self.replay_next() {
            match (&e, prim) {
                (Entry::Affirm(a), Prim::Affirm)
                | (Entry::Deny(a), Prim::Deny)
                | (Entry::FreeOf(a), Prim::FreeOf)
                    if *a == aid =>
                {
                    return Ok(());
                }
                _ => self.diverged(prim.name(), &e),
            }
        }
        let mut sh = self.shared.lock();
        let result = match prim {
            Prim::Affirm => sh.engine.affirm(self.pid, aid),
            Prim::Deny => sh.engine.deny(self.pid, aid),
            Prim::FreeOf => sh.engine.free_of(self.pid, aid),
        };
        let entry = match prim {
            Prim::Affirm => Entry::Affirm(aid),
            Prim::Deny => Entry::Deny(aid),
            Prim::FreeOf => Entry::FreeOf(aid),
        };
        let pid = self.pid;
        let skipped = matches!(result, Err(Error::AidConsumed(_)));
        sh.trace(|| {
            format!(
                "{pid}: {}({aid}){}",
                prim.name(),
                if skipped {
                    " [already decided: no-op]"
                } else {
                    ""
                }
            )
        });
        sh.procs[self.idx].journal.push(entry);
        let rolled = match result {
            Ok(fx) => {
                let rolled = sh.apply_effects(self.idx, &fx);
                let action = match prim {
                    Prim::Affirm => Action::Affirm {
                        aid,
                        speculative: fx.iter().any(|e| {
                            matches!(e, hope_core::Effect::SpeculativelyAffirmed { aid: a, .. }
                                     if *a == aid)
                        }),
                    },
                    Prim::Deny => Action::Deny {
                        aid,
                        speculative: fx.iter().any(|e| {
                            matches!(e, hope_core::Effect::SpeculativelyDenied { aid: a, .. }
                                     if *a == aid)
                        }),
                    },
                    Prim::FreeOf => Action::FreeOf { aid },
                };
                sh.observe(pid, &action, &fx);
                rolled
            }
            // Re-application after a conservative decision: recorded no-op.
            Err(Error::AidConsumed(_)) => {
                sh.observe(
                    pid,
                    &Action::SkippedDecide {
                        aid,
                        kind: prim.kind(),
                    },
                    &[],
                );
                false
            }
            Err(e) => panic!("engine rejected {}: {e}", prim.name()),
        };
        drop(sh);
        if rolled {
            return Err(Signal::Rollback);
        }
        Ok(())
    }

    /// `true` if this process currently depends on undecided assumptions.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn is_speculative(&mut self) -> Hope<bool> {
        if let Some(e) = self.replay_next() {
            match e {
                Entry::Flag(v) => return Ok(v),
                other => self.diverged("is_speculative", &other),
            }
        }
        let mut sh = self.shared.lock();
        let v = sh
            .engine
            .is_speculative(self.pid)
            .expect("process is registered");
        sh.procs[self.idx].journal.push(Entry::Flag(v));
        Ok(v)
    }

    // ------------------------------------------------------------------
    // time, randomness, output
    // ------------------------------------------------------------------

    /// Consume `d` of virtual CPU time.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn compute(&mut self, d: VirtualDuration) -> Hope<()> {
        if let Some(e) = self.replay_next() {
            match e {
                Entry::Compute(_) => return Ok(()),
                other => self.diverged("compute", &other),
            }
        }
        {
            let mut sh = self.shared.lock();
            sh.procs[self.idx].journal.push(Entry::Compute(d));
            let at = sh.now + d;
            sh.schedule_wake(self.idx, at);
        }
        self.park(ProcState::Holding)
    }

    /// The current virtual time.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn now(&mut self) -> Hope<VirtualTime> {
        if let Some(e) = self.replay_next() {
            match e {
                Entry::Now(t) => return Ok(t),
                other => self.diverged("now", &other),
            }
        }
        let mut sh = self.shared.lock();
        let t = sh.now;
        sh.procs[self.idx].journal.push(Entry::Now(t));
        Ok(t)
    }

    /// A journaled random `u64` from this process's deterministic stream.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn random_u64(&mut self) -> Hope<u64> {
        if let Some(e) = self.replay_next() {
            match e {
                Entry::Rand(v) => return Ok(v),
                other => self.diverged("rand", &other),
            }
        }
        let mut sh = self.shared.lock();
        let v = sh.procs[self.idx].rng.next_u64();
        sh.procs[self.idx].journal.push(Entry::Rand(v));
        Ok(v)
    }

    /// A journaled Bernoulli draw: `true` with probability `p`.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn chance(&mut self, p: f64) -> Hope<bool> {
        let v = self.random_u64()?;
        Ok((v as f64 / u64::MAX as f64) < p.clamp(0.0, 1.0))
    }

    /// Emit one output line, subject to output commit: buffered while this
    /// process is speculative, released when the buffering interval
    /// finalizes, discarded if it rolls back.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn output(&mut self, line: impl Into<String>) -> Hope<()> {
        let line = line.into();
        if let Some(e) = self.replay_next() {
            match e {
                Entry::Output => return Ok(()),
                other => self.diverged("output", &other),
            }
        }
        let mut sh = self.shared.lock();
        sh.output(self.idx, line);
        sh.procs[self.idx].journal.push(Entry::Output);
        Ok(())
    }

    // ------------------------------------------------------------------
    // messaging
    // ------------------------------------------------------------------

    /// Send a one-way message. The runtime tags it with this process's
    /// current dependence set (§3); the call never blocks.
    ///
    /// Returns the message id.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn send(&mut self, to: ProcessId, payload: impl Into<Value>) -> Hope<u64> {
        self.send_kind(to, |_| MsgKind::Plain, payload.into())
    }

    /// Send a request *without* blocking for the reply (the asynchronous
    /// half of an RPC). Returns the call id; collect the reply later with
    /// [`Ctx::recv_matching`] — or never, if an optimistic protocol makes
    /// the reply unnecessary.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn send_request(&mut self, to: ProcessId, payload: impl Into<Value>) -> Hope<u64> {
        self.send_kind(to, MsgKind::Request, payload.into())
    }

    /// Receive the next deliverable message (blocking). Ghost messages —
    /// whose tags contain a denied AID — are dropped silently; receiving a
    /// message from a speculative sender implicitly guesses the tag's
    /// undecided AIDs, making this process speculative too.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn recv(&mut self) -> Hope<Message> {
        self.recv_where(&|_| true)
    }

    /// Receive the next deliverable message satisfying `pred`, leaving
    /// non-matching messages queued.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn recv_matching(&mut self, pred: impl Fn(&Message) -> bool) -> Hope<Message> {
        self.recv_where(&pred)
    }

    /// Receive the next deliverable message if one is already queued,
    /// without blocking. Ghost messages encountered during the scan are
    /// dropped. Returns `None` when the mailbox holds nothing deliverable.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn try_recv(&mut self) -> Hope<Option<Message>> {
        self.try_recv_where(&|_| true)
    }

    /// Like [`Ctx::try_recv`], but only considers messages satisfying
    /// `pred`, leaving others queued. Ghosts matching `pred` are dropped
    /// during the scan.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn try_recv_matching(&mut self, pred: impl Fn(&Message) -> bool) -> Hope<Option<Message>> {
        self.try_recv_where(&pred)
    }

    fn try_recv_where(&mut self, pred: &dyn Fn(&Message) -> bool) -> Hope<Option<Message>> {
        if let Some(e) = self.replay_next() {
            match e {
                Entry::Recv(m) => return Ok(Some(*m)),
                Entry::Flag(false) => return Ok(None),
                other => self.diverged("try_recv", &other),
            }
        }
        loop {
            let mut sh = self.shared.lock();
            let first = sh.procs[self.idx]
                .mailbox
                .iter()
                .find(|(_, m)| pred(m))
                .map(|(k, _)| *k);
            match first {
                None => {
                    sh.procs[self.idx].journal.push(Entry::Flag(false));
                    return Ok(None);
                }
                Some(k) => {
                    let m = sh.procs[self.idx]
                        .mailbox
                        .remove(&k)
                        .expect("key just observed");
                    let pos = sh.procs[self.idx].journal.len() as u64;
                    let (outcome, fx) = sh
                        .engine
                        .implicit_guess(self.pid, &m.tag, Checkpoint(pos))
                        .expect("receive on engine-owned ids");
                    match outcome {
                        ReceiveOutcome::Ghost(denied) => {
                            sh.stats.ghosts_dropped += 1;
                            let pid = self.pid;
                            sh.trace(|| {
                                format!("{pid}: ghost m{} dropped ({denied} denied)", m.id)
                            });
                            sh.observe(
                                pid,
                                &Action::GhostDropped {
                                    msg: m.id,
                                    from: m.from,
                                    denied,
                                },
                                &[],
                            );
                            continue;
                        }
                        ReceiveOutcome::Clean | ReceiveOutcome::Speculative(_) => {
                            sh.procs[self.idx]
                                .journal
                                .push(Entry::Recv(Box::new(m.clone())));
                            let rolled = sh.apply_effects(self.idx, &fx);
                            let speculative = matches!(outcome, ReceiveOutcome::Speculative(_));
                            sh.observe(
                                self.pid,
                                &Action::Recv {
                                    msg: m.id,
                                    from: m.from,
                                    speculative,
                                },
                                &fx,
                            );
                            debug_assert!(!rolled, "a receive cannot roll back its receiver");
                            return Ok(Some(m));
                        }
                    }
                }
            }
        }
    }

    /// A synchronous remote procedure call: sends a request and blocks for
    /// the matching reply, returning its payload. This is the *pessimistic*
    /// building block that Call Streaming (the `hope-callstream` crate)
    /// optimistically transforms away.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn rpc(&mut self, to: ProcessId, payload: impl Into<Value>) -> Hope<Value> {
        let call = self.send_kind(to, MsgKind::Request, payload.into())?;
        let reply = self.recv_matching(|m| m.is_reply_to(call))?;
        Ok(reply.payload)
    }

    /// Reply to a received request.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    ///
    /// # Panics
    ///
    /// Panics if `req` is not a [`MsgKind::Request`].
    pub fn reply(&mut self, req: &Message, payload: impl Into<Value>) -> Hope<u64> {
        let call = req.kind.call_id().expect("reply target must be a request");
        debug_assert!(matches!(req.kind, MsgKind::Request(_)));
        self.send_kind(req.from, move |_| MsgKind::Reply(call), payload.into())
    }

    fn send_kind(
        &mut self,
        to: ProcessId,
        kind_of: impl FnOnce(u64) -> MsgKind,
        payload: Value,
    ) -> Hope<u64> {
        if let Some(e) = self.replay_next() {
            match e {
                Entry::Send { msg_id } => return Ok(msg_id),
                other => self.diverged("send", &other),
            }
        }
        let mut sh = self.shared.lock();
        let id = sh.send_message_with(self.idx, to, kind_of, payload);
        let pid = self.pid;
        sh.trace(|| format!("{pid}: send m{id} -> {to}"));
        sh.procs[self.idx].journal.push(Entry::Send { msg_id: id });
        sh.observe(pid, &Action::Send { to, msg: id }, &[]);
        Ok(id)
    }

    fn recv_where(&mut self, pred: &dyn Fn(&Message) -> bool) -> Hope<Message> {
        if let Some(e) = self.replay_next() {
            match e {
                Entry::Recv(m) => return Ok(*m),
                other => self.diverged("recv", &other),
            }
        }
        loop {
            let mut sh = self.shared.lock();
            let chosen = sh.procs[self.idx]
                .mailbox
                .iter()
                .find(|(_, m)| pred(m))
                .map(|(k, _)| *k);
            match chosen {
                Some(k) => {
                    let m = sh.procs[self.idx]
                        .mailbox
                        .remove(&k)
                        .expect("key just observed");
                    let pos = sh.procs[self.idx].journal.len() as u64;
                    let (outcome, fx) = sh
                        .engine
                        .implicit_guess(self.pid, &m.tag, Checkpoint(pos))
                        .expect("receive on engine-owned ids");
                    match outcome {
                        ReceiveOutcome::Ghost(denied) => {
                            sh.stats.ghosts_dropped += 1;
                            let pid = self.pid;
                            sh.trace(|| {
                                format!("{pid}: ghost m{} dropped ({denied} denied)", m.id)
                            });
                            sh.observe(
                                pid,
                                &Action::GhostDropped {
                                    msg: m.id,
                                    from: m.from,
                                    denied,
                                },
                                &[],
                            );
                            // keep scanning: the ghost is gone for good
                            continue;
                        }
                        ReceiveOutcome::Clean | ReceiveOutcome::Speculative(_) => {
                            let pid = self.pid;
                            sh.trace(|| {
                                format!(
                                    "{pid}: recv m{} from {}{}",
                                    m.id,
                                    m.from,
                                    if matches!(outcome, ReceiveOutcome::Speculative(_)) {
                                        " [speculative]"
                                    } else {
                                        ""
                                    }
                                )
                            });
                            sh.procs[self.idx]
                                .journal
                                .push(Entry::Recv(Box::new(m.clone())));
                            let rolled = sh.apply_effects(self.idx, &fx);
                            let speculative = matches!(outcome, ReceiveOutcome::Speculative(_));
                            sh.observe(
                                self.pid,
                                &Action::Recv {
                                    msg: m.id,
                                    from: m.from,
                                    speculative,
                                },
                                &fx,
                            );
                            debug_assert!(!rolled, "a receive cannot roll back its receiver");
                            return Ok(m);
                        }
                    }
                }
                None => {
                    drop(sh);
                    self.park(ProcState::BlockedRecv)?;
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Prim {
    Affirm,
    Deny,
    FreeOf,
}

impl Prim {
    fn name(self) -> &'static str {
        match self {
            Prim::Affirm => "affirm",
            Prim::Deny => "deny",
            Prim::FreeOf => "free_of",
        }
    }

    fn kind(self) -> DecideKind {
        match self {
            Prim::Affirm => DecideKind::Affirm,
            Prim::Deny => DecideKind::Deny,
            Prim::FreeOf => DecideKind::FreeOf,
        }
    }
}
