//! `Ctx`: the process-side API — HOPE primitives, messaging, virtual time.
//!
//! A process body is a closure `Fn(&mut Ctx) -> Hope<()>`. Everything the
//! body learns about the world comes through `Ctx`, which journals each
//! interaction so that rollback can re-execute the body deterministically
//! (see [`journal`](crate::journal)). The obligations on a body are:
//!
//! 1. **Determinism given `Ctx` results** — no host clocks, no global
//!    mutable state, no `rand` calls outside [`Ctx::random_u64`].
//! 2. **Propagate signals** — every fallible `Ctx` call returns
//!    [`Hope<T>`](crate::Hope); use `?` and let [`Signal`]s unwind.
//! 3. **Externally visible work goes through [`Ctx::output`]** (or happens
//!    after the assumptions it depends on are affirmed): the runtime
//!    buffers speculative output and discards it on rollback, but it cannot
//!    un-write your files.

use std::sync::Arc;

use crossbeam_channel::{Receiver, Sender};
use hope_core::{
    Action, AidId, AidState, Checkpoint, DecideKind, Error, ProcessId, ReceiveOutcome,
};
use hope_sim::{VirtualDuration, VirtualTime};
use parking_lot::{Mutex, MutexGuard};

use crate::governor::{Admission, DEFAULT_GUESS_SITE, RELIABLE_SEND_SITE};
use crate::journal::Entry;
use crate::message::{Message, MsgKind};
use crate::scheduler::ResumeSignal;
use crate::shared::{EventKind, ProcState, Shared};
use crate::signal::{Hope, Signal};
use crate::stats::CrashReason;
use crate::value::Value;

/// The handle a process body uses to interact with the simulated world.
///
/// See the module-level documentation above for the obligations on process bodies, and
/// [`Simulation::spawn`](crate::Simulation::spawn) for how bodies are
/// installed.
#[derive(Debug)]
pub struct Ctx {
    shared: Arc<Mutex<Shared>>,
    idx: usize,
    pid: ProcessId,
    resume_rx: Receiver<ResumeSignal>,
    yield_tx: Sender<()>,
    replay_len: usize,
    cursor: usize,
}

impl Ctx {
    pub(crate) fn new(
        shared: Arc<Mutex<Shared>>,
        idx: usize,
        resume_rx: Receiver<ResumeSignal>,
        yield_tx: Sender<()>,
        replay_len: usize,
    ) -> Self {
        let (pid, base) = {
            let sh = shared.lock();
            // Fossil collection may have reclaimed a journal prefix; replay
            // resumes at the surviving snapshot, not at step zero.
            (sh.procs[idx].pid, sh.procs[idx].journal.base())
        };
        Ctx {
            shared,
            idx,
            pid,
            resume_rx,
            yield_tx,
            replay_len,
            cursor: base,
        }
    }

    /// This process's id.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// `true` while the body is replaying its journal after a rollback.
    ///
    /// Useful only for diagnostics; bodies must behave identically either
    /// way.
    pub fn replaying(&self) -> bool {
        self.cursor < self.replay_len
    }

    /// `true` when this run has a fault schedule installed
    /// ([`SimConfig::with_faults`](crate::SimConfig::with_faults)).
    ///
    /// Constant for the whole run (so it is safe to branch on without
    /// journaling). Protocols use it to choose a delivery discipline: on a
    /// reliable network a plain [`send`](Ctx::send) already delivers, and a
    /// verifier can stay fully definite; under an unreliable one,
    /// loss-sensitive messages must ride
    /// [`send_reliable`](Ctx::send_reliable) at the cost of a brief
    /// speculative window per send.
    pub fn faults_enabled(&self) -> bool {
        self.lock().config.faults.is_some()
    }

    // ------------------------------------------------------------------
    // replay machinery
    // ------------------------------------------------------------------

    /// Take the `Shared` lock, counting the acquisition. Every lock taken
    /// on behalf of a process body goes through here so that
    /// `RunStats::ctx_lock_acquisitions` measures the body-side contention
    /// a real multi-core runtime would see; the regression suite pins the
    /// one-lock-per-primitive invariant against this counter.
    fn lock(&self) -> MutexGuard<'_, Shared> {
        let mut sh = self.shared.lock();
        sh.stats.ctx_lock_acquisitions += 1;
        sh
    }

    fn replay_next(&mut self) -> Option<Entry> {
        if self.cursor >= self.replay_len {
            return None;
        }
        let sh = self.lock();
        let e = sh.procs[self.idx]
            .journal
            .get(self.cursor)
            .expect("replay cursor within journal")
            .clone();
        drop(sh);
        self.cursor += 1;
        Some(e)
    }

    /// Acquire the lock for a **live** (non-replay) primitive, enforcing the
    /// journal budget before the caller appends a new entry. A body stuck in
    /// an unbounded retry loop (e.g. [`Ctx::send_reliable`] to a peer
    /// partitioned away forever) would otherwise grow its journal without
    /// bound; crossing [`SimConfig::max_journal_entries`](crate::SimConfig)
    /// **live** entries crashes the process with the typed
    /// [`CrashReason::JournalOverflow`]. Entries reclaimed by fossil
    /// collection don't count, so checkpointing bodies never trip the
    /// limit merely by running long.
    ///
    /// Returns the guard *still held*: the caller performs its whole
    /// primitive under this single acquisition instead of re-locking, which
    /// is what keeps the hot path at one `Shared` round-trip per primitive.
    fn live(&self) -> Hope<MutexGuard<'_, Shared>> {
        let mut sh = self.lock();
        let limit = sh.config.max_journal_entries;
        if sh.procs[self.idx].journal.live_len() >= limit && sh.config.fossil_collection {
            // Last-ditch sweep before declaring overflow: the limit bounds
            // *irreducible* live entries, not entries the horizon has
            // already passed but the periodic sweep hasn't reclaimed yet.
            sh.fossil_sweep();
        }
        if sh.procs[self.idx].journal.live_len() >= limit {
            let pid = self.pid;
            sh.trace(|| format!("{pid}: journal limit ({limit} live entries) exceeded"));
            sh.procs[self.idx].state = ProcState::Crashed;
            sh.procs[self.idx].crash = Some(CrashReason::JournalOverflow { limit });
            return Err(Signal::Shutdown);
        }
        Ok(sh)
    }

    fn diverged(&self, expected: &str, got: &Entry) -> ! {
        panic!(
            "replay divergence in {}: body issued `{expected}` but the journal \
             recorded `{}` at position {} — process bodies must be \
             deterministic given Ctx results",
            self.pid,
            got.kind(),
            self.cursor - 1,
        )
    }

    fn park(&mut self, state: ProcState) -> Hope<()> {
        {
            let mut sh = self.lock();
            sh.procs[self.idx].state = state;
        }
        let _ = self.yield_tx.send(());
        match self.resume_rx.recv() {
            Ok(ResumeSignal::Go) => {
                let sh = self.lock();
                if sh.procs[self.idx].rollback_pending {
                    Err(Signal::Rollback)
                } else {
                    Ok(())
                }
            }
            Ok(ResumeSignal::Shutdown) | Err(_) => Err(Signal::Shutdown),
        }
    }

    // ------------------------------------------------------------------
    // HOPE primitives
    // ------------------------------------------------------------------

    /// Create a fresh assumption identifier (the paper's `aid_init`).
    ///
    /// # Errors
    ///
    /// Returns a [`Signal`] only on shutdown (never blocks otherwise).
    pub fn aid_init(&mut self) -> Hope<AidId> {
        if let Some(e) = self.replay_next() {
            match e {
                Entry::AidInit(aid) => return Ok(aid),
                other => self.diverged("aid_init", &other),
            }
        }
        let mut sh = self.live()?;
        let aid = sh.engine.aid_init(self.pid);
        let pos = sh.procs[self.idx].journal.len();
        sh.procs[self.idx].journal.push(Entry::AidInit(aid));
        // Mirror the journal's AidInit entries so a fault kill can deny
        // this process's open assumptions without scanning the journal
        // (whose prefix fossil collection may have reclaimed).
        sh.procs[self.idx].own_aids.push((pos, aid));
        Ok(aid)
    }

    /// `guess(x)`: begin computing under the assumption identified by `x`.
    ///
    /// Returns `true` immediately (speculatively). If the assumption is
    /// later denied, the process is rolled back to this point, the body is
    /// re-executed, and this call returns `false` (§5.1, Equation 24).
    ///
    /// # Errors
    ///
    /// [`Signal::Rollback`]/[`Signal::Shutdown`] propagated from the
    /// runtime.
    pub fn guess(&mut self, aid: AidId) -> Hope<bool> {
        self.guess_inner(aid, DEFAULT_GUESS_SITE)
    }

    /// [`Ctx::guess`] with an explicit **guess site** id for the optimism
    /// governor (see [`crate::governor`]): sites are the granularity at
    /// which the governor tracks deny pressure and throttles or
    /// de-speculates. The analyzer's statement indices
    /// ([`hope_analysis::cost::site_priors`]) are the intended vocabulary,
    /// letting its static damage ranks seed the per-site damage estimates.
    /// Without a governor configured, behaves exactly like [`Ctx::guess`].
    ///
    /// # Errors
    ///
    /// [`Signal::Rollback`]/[`Signal::Shutdown`] propagated from the
    /// runtime.
    pub fn guess_at(&mut self, aid: AidId, site: u32) -> Hope<bool> {
        self.guess_inner(aid, site)
    }

    fn guess_inner(&mut self, aid: AidId, site: u32) -> Hope<bool> {
        if let Some(e) = self.replay_next() {
            match e {
                Entry::Guess { aid: a, value } if a == aid => return Ok(value),
                other => self.diverged("guess", &other),
            }
        }
        let mut sh = self.live()?;
        if sh.config.governor.is_some() {
            match sh.govern_admit(self.idx, aid, site) {
                Admission::Admit => {}
                Admission::Hold(d) => {
                    // Throttled: spend the optimism a little later. The
                    // hold is an ordinary epoch-guarded wake, so it is a
                    // realizable event for replay and model checking; if
                    // the assumption is denied while we hold, the guess
                    // below answers `false` without any rollback.
                    let pid = self.pid;
                    sh.trace(|| format!("{pid}: governor holds guess({aid})"));
                    let at = sh.now + d;
                    sh.schedule_wake(self.idx, at);
                    drop(sh);
                    self.park(ProcState::Holding)?;
                    sh = self.live()?;
                }
                Admission::Wait => {
                    // Conservative: full degradation to non-speculative
                    // execution. Park until the assumption is decided —
                    // the decision handler wakes registered waiters — then
                    // fall through to a guess that answers definitively
                    // and commits the same branch optimism would have.
                    let pid = self.pid;
                    sh.trace(|| format!("{pid}: governor converts guess({aid}) to a wait"));
                    loop {
                        if sh.engine.aid_state(aid).ok() != Some(AidState::Undecided) {
                            break;
                        }
                        if let Some(gov) = sh.governor.as_mut() {
                            gov.waiting.insert(aid, self.idx);
                        }
                        drop(sh);
                        self.park(ProcState::Holding)?;
                        sh = self.live()?;
                        if let Some(gov) = sh.governor.as_mut() {
                            gov.waiting.remove(&aid);
                        }
                    }
                }
            }
        }
        let pos = sh.procs[self.idx].journal.len() as u64;
        let (outcome, fx) = sh
            .engine
            .guess(self.pid, &[aid], Checkpoint(pos))
            .expect("guess on engine-owned ids");
        let value = outcome.value();
        let pid = self.pid;
        sh.trace(|| format!("{pid}: guess({aid}) -> {value}"));
        sh.procs[self.idx].journal.push(Entry::Guess { aid, value });
        let rolled = sh.apply_effects(self.idx, &fx);
        sh.observe(pid, &Action::Guess { aid, value }, &fx);
        drop(sh);
        if rolled {
            return Err(Signal::Rollback);
        }
        Ok(value)
    }

    /// `affirm(x)`: assert the assumption was correct (§5.2).
    ///
    /// Re-affirming an AID that was already decided (which happens
    /// legitimately in re-executed code after a conservative deny) is a
    /// recorded no-op rather than an error.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn affirm(&mut self, aid: AidId) -> Hope<()> {
        self.try_affirm(aid).map(|_| ())
    }

    /// Like [`Ctx::affirm`], but reports whether the affirm took effect:
    /// `false` means the AID was already decided (e.g. denied by a crash
    /// kill after its message was delivered) and the affirm was a recorded
    /// no-op. Protocols that use an affirm as a commit acknowledgement
    /// should check this and fall back to an explicit repair when it
    /// returns `false`.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn try_affirm(&mut self, aid: AidId) -> Hope<bool> {
        if let Some(e) = self.replay_next() {
            match e {
                Entry::Affirm { aid: a, applied } if a == aid => return Ok(applied),
                other => self.diverged("affirm", &other),
            }
        }
        let mut sh = self.live()?;
        let result = sh.engine.affirm(self.pid, aid);
        let pid = self.pid;
        let applied = !matches!(result, Err(Error::AidConsumed(_)));
        sh.trace(|| {
            format!(
                "{pid}: affirm({aid}){}",
                if applied {
                    ""
                } else {
                    " [already decided: no-op]"
                }
            )
        });
        sh.procs[self.idx]
            .journal
            .push(Entry::Affirm { aid, applied });
        let rolled = match result {
            Ok(fx) => {
                let rolled = sh.apply_effects(self.idx, &fx);
                sh.observe(
                    pid,
                    &Action::Affirm {
                        aid,
                        speculative: fx.iter().any(|e| {
                            matches!(e, hope_core::Effect::SpeculativelyAffirmed { aid: a, .. }
                                     if *a == aid)
                        }),
                    },
                    &fx,
                );
                rolled
            }
            Err(Error::AidConsumed(_)) => {
                sh.observe(
                    pid,
                    &Action::SkippedDecide {
                        aid,
                        kind: DecideKind::Affirm,
                    },
                    &[],
                );
                false
            }
            Err(e) => panic!("engine rejected affirm: {e}"),
        };
        drop(sh);
        if rolled {
            return Err(Signal::Rollback);
        }
        Ok(applied)
    }

    /// `deny(x)`: assert the assumption was wrong, rolling back every
    /// dependent computation (§5.3). If the caller itself depends on `x`,
    /// this call returns `Err(Signal::Rollback)` — propagate it.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn deny(&mut self, aid: AidId) -> Hope<()> {
        self.primitive(aid, Prim::Deny)
    }

    /// `free_of(x)`: assert this computation is not, and never will be,
    /// causally dependent on `x` (§5.4). If the constraint is already
    /// violated the runtime denies `x`, rolling this process back.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn free_of(&mut self, aid: AidId) -> Hope<()> {
        self.primitive(aid, Prim::FreeOf)
    }

    fn primitive(&mut self, aid: AidId, prim: Prim) -> Hope<()> {
        if let Some(e) = self.replay_next() {
            match (&e, prim) {
                (Entry::Deny(a), Prim::Deny) | (Entry::FreeOf(a), Prim::FreeOf) if *a == aid => {
                    return Ok(());
                }
                _ => self.diverged(prim.name(), &e),
            }
        }
        let mut sh = self.live()?;
        let result = match prim {
            Prim::Deny => sh.engine.deny(self.pid, aid),
            Prim::FreeOf => sh.engine.free_of(self.pid, aid),
        };
        let entry = match prim {
            Prim::Deny => Entry::Deny(aid),
            Prim::FreeOf => Entry::FreeOf(aid),
        };
        let pid = self.pid;
        let skipped = matches!(result, Err(Error::AidConsumed(_)));
        sh.trace(|| {
            format!(
                "{pid}: {}({aid}){}",
                prim.name(),
                if skipped {
                    " [already decided: no-op]"
                } else {
                    ""
                }
            )
        });
        sh.procs[self.idx].journal.push(entry);
        let rolled = match result {
            Ok(fx) => {
                let rolled = sh.apply_effects(self.idx, &fx);
                let action = match prim {
                    Prim::Deny => Action::Deny {
                        aid,
                        speculative: fx.iter().any(|e| {
                            matches!(e, hope_core::Effect::SpeculativelyDenied { aid: a, .. }
                                     if *a == aid)
                        }),
                    },
                    Prim::FreeOf => Action::FreeOf { aid },
                };
                sh.observe(pid, &action, &fx);
                rolled
            }
            // Re-application after a conservative decision: recorded no-op.
            Err(Error::AidConsumed(_)) => {
                sh.observe(
                    pid,
                    &Action::SkippedDecide {
                        aid,
                        kind: prim.kind(),
                    },
                    &[],
                );
                false
            }
            Err(e) => panic!("engine rejected {}: {e}", prim.name()),
        };
        drop(sh);
        if rolled {
            return Err(Signal::Rollback);
        }
        Ok(())
    }

    /// `true` if this process currently depends on undecided assumptions.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn is_speculative(&mut self) -> Hope<bool> {
        if let Some(e) = self.replay_next() {
            match e {
                Entry::Flag(v) => return Ok(v),
                other => self.diverged("is_speculative", &other),
            }
        }
        let mut sh = self.live()?;
        let v = sh
            .engine
            .is_speculative(self.pid)
            .expect("process is registered");
        sh.procs[self.idx].journal.push(Entry::Flag(v));
        Ok(v)
    }

    // ------------------------------------------------------------------
    // truncation-safe resume (snapshot/restore protocol)
    // ------------------------------------------------------------------

    /// Declare this body **restorable** and fetch its resume state, if any.
    ///
    /// Must be the body's *first* `Ctx` call. Together with
    /// [`checkpoint`](Ctx::checkpoint) this is the opt-in protocol that
    /// lets fossil collection reclaim journal prefixes: a restorable body
    /// re-executed after a rollback or a crash-restart replays from its
    /// newest safe snapshot instead of from step zero.
    ///
    /// * On a fresh journal this records a marker and returns `None`: run
    ///   the body's initialization.
    /// * After fossil collection has truncated the journal's prefix back to
    ///   a snapshot, re-execution returns `Some(state)` — the exact
    ///   [`Value`] the corresponding [`checkpoint`](Ctx::checkpoint)
    ///   recorded. Rebuild your state from it and proceed to the statement
    ///   *after* that checkpoint call; the journal replays the rest.
    ///
    /// Bodies that never call this simply keep their whole journal — fossil
    /// collection still reclaims engine records, just not their journals.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn restore(&mut self) -> Hope<Option<Value>> {
        if self.cursor < self.replay_len {
            let mut sh = self.lock();
            let base = sh.procs[self.idx].journal.base();
            let e = sh.procs[self.idx]
                .journal
                .get(self.cursor)
                .expect("replay cursor within journal")
                .clone();
            match e {
                // The reclaimed-prefix case: replay begins at the snapshot
                // itself. Peek, don't consume — the body's own `checkpoint`
                // call at the top of its loop replays this entry.
                Entry::Snapshot(v) if self.cursor == base => {
                    sh.procs[self.idx].restorable = true;
                    return Ok(Some(v));
                }
                Entry::Restore => {
                    sh.procs[self.idx].restorable = true;
                    drop(sh);
                    self.cursor += 1;
                    return Ok(None);
                }
                other => {
                    drop(sh);
                    self.cursor += 1;
                    self.diverged("restore", &other)
                }
            }
        }
        let mut sh = self.live()?;
        sh.procs[self.idx].restorable = true;
        sh.procs[self.idx].journal.push(Entry::Restore);
        Ok(None)
    }

    /// Record a resumable snapshot of the body's state.
    ///
    /// Call at a point the body can reconstruct itself from `state` alone —
    /// typically the top of its main loop. Once the engine's commit horizon
    /// passes this point, fossil collection may truncate everything before
    /// the snapshot; a later re-execution then resumes here via
    /// [`restore`](Ctx::restore). Cheap enough to call every iteration:
    /// one journal entry per call, and superseded snapshots are reclaimed
    /// with the prefix they close over.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    ///
    /// # Panics
    ///
    /// Panics if the body did not call [`restore`](Ctx::restore) first:
    /// a truncated journal must resume *somewhere*, and only `restore`
    /// gives it an entry point.
    pub fn checkpoint(&mut self, state: impl Into<Value>) -> Hope<()> {
        let state = state.into();
        if let Some(e) = self.replay_next() {
            match e {
                Entry::Snapshot(_) => return Ok(()),
                other => self.diverged("checkpoint", &other),
            }
        }
        let mut sh = self.live()?;
        assert!(
            sh.procs[self.idx].restorable,
            "{}: Ctx::checkpoint requires the body to call Ctx::restore first \
             (the truncation-safe resume protocol needs an entry point)",
            self.pid
        );
        let pos = sh.procs[self.idx].journal.len();
        sh.procs[self.idx].journal.push(Entry::Snapshot(state));
        sh.procs[self.idx].snapshots.push(pos);
        Ok(())
    }

    // ------------------------------------------------------------------
    // time, randomness, output
    // ------------------------------------------------------------------

    /// Consume `d` of virtual CPU time.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn compute(&mut self, d: VirtualDuration) -> Hope<()> {
        if let Some(e) = self.replay_next() {
            match e {
                Entry::Compute(_) => return Ok(()),
                other => self.diverged("compute", &other),
            }
        }
        {
            let mut sh = self.live()?;
            sh.procs[self.idx].journal.push(Entry::Compute(d));
            let at = sh.now + d;
            sh.schedule_wake(self.idx, at);
        }
        self.park(ProcState::Holding)
    }

    /// The current virtual time.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn now(&mut self) -> Hope<VirtualTime> {
        if let Some(e) = self.replay_next() {
            match e {
                Entry::Now(t) => return Ok(t),
                other => self.diverged("now", &other),
            }
        }
        let mut sh = self.live()?;
        let t = sh.now;
        sh.procs[self.idx].journal.push(Entry::Now(t));
        Ok(t)
    }

    /// A journaled random `u64` from this process's deterministic stream.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn random_u64(&mut self) -> Hope<u64> {
        if let Some(e) = self.replay_next() {
            match e {
                Entry::Rand(v) => return Ok(v),
                other => self.diverged("rand", &other),
            }
        }
        let mut sh = self.live()?;
        let v = sh.procs[self.idx].rng.next_u64();
        sh.procs[self.idx].journal.push(Entry::Rand(v));
        Ok(v)
    }

    /// A journaled Bernoulli draw: `true` with probability `p`.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn chance(&mut self, p: f64) -> Hope<bool> {
        let v = self.random_u64()?;
        Ok((v as f64 / u64::MAX as f64) < p.clamp(0.0, 1.0))
    }

    /// Emit one output line, subject to output commit: buffered while this
    /// process is speculative, released when the buffering interval
    /// finalizes, discarded if it rolls back.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn output(&mut self, line: impl Into<String>) -> Hope<()> {
        let line = line.into();
        if let Some(e) = self.replay_next() {
            match e {
                Entry::Output => return Ok(()),
                other => self.diverged("output", &other),
            }
        }
        let mut sh = self.live()?;
        sh.output(self.idx, line);
        sh.procs[self.idx].journal.push(Entry::Output);
        Ok(())
    }

    // ------------------------------------------------------------------
    // messaging
    // ------------------------------------------------------------------

    /// Send a one-way message. The runtime tags it with this process's
    /// current dependence set (§3); the call never blocks.
    ///
    /// Returns the message id.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn send(&mut self, to: ProcessId, payload: impl Into<Value>) -> Hope<u64> {
        self.send_kind(to, |_| MsgKind::Plain, payload.into())
    }

    /// Send a request *without* blocking for the reply (the asynchronous
    /// half of an RPC). Returns the call id; collect the reply later with
    /// [`Ctx::recv_matching`] — or never, if an optimistic protocol makes
    /// the reply unnecessary.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn send_request(&mut self, to: ProcessId, payload: impl Into<Value>) -> Hope<u64> {
        self.send_kind(to, MsgKind::Request, payload.into())
    }

    /// Send `payload` to `to` reliably, built from HOPE's own primitives:
    /// each attempt guesses "this copy was delivered", the runtime's
    /// delivery ack affirms the guess, and a deterministic timeout
    /// ([`SimConfig::ack_timeout`](crate::SimConfig), doubling per retry up
    /// to [`SimConfig::ack_backoff_cap`](crate::SimConfig)) denies it,
    /// rolling the sender back into this loop to retransmit. The logical
    /// sequence number (returned) is journaled once, so every
    /// retransmission carries the same one and the receiver deduplicates;
    /// the sender's dependence tag flows through retries unchanged.
    ///
    /// The call does not block: the guess succeeds speculatively and the
    /// body runs ahead; only a timeout deny rewinds it here. With no fault
    /// plan the first attempt's ack always lands, so this degrades to a
    /// plain send plus one assumption and its ack. The copy is sent
    /// *before* the guess, so its tag excludes the attempt's own
    /// "delivered" AID — a timed-out-but-merely-slow copy still arrives
    /// (deduplicated by sequence) instead of ghosting itself.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn send_reliable(&mut self, to: ProcessId, payload: impl Into<Value>) -> Hope<u64> {
        let payload = payload.into();
        let seq = self.next_reliable_seq()?;
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            let aid = self.aid_init()?;
            self.send_reliable_attempt(to, seq, aid, attempt, payload.clone())?;
            if self.guess_inner(aid, RELIABLE_SEND_SITE)? {
                return Ok(seq);
            }
            // Denied (timeout, or a fault kill): re-execution replayed the
            // journal back to this loop; go around for the next attempt.
        }
    }

    /// Allocate the logical sequence number for a `send_reliable`. The
    /// allocation is journaled *before* the retry loop, so re-executions
    /// rolled back into the loop reuse the recorded number — which is what
    /// makes receiver-side deduplication sound.
    fn next_reliable_seq(&mut self) -> Hope<u64> {
        if let Some(e) = self.replay_next() {
            match e {
                Entry::ReliableSeq(s) => return Ok(s),
                other => self.diverged("reliable_seq", &other),
            }
        }
        let mut sh = self.live()?;
        let seq = sh.procs[self.idx].next_reliable;
        sh.procs[self.idx].next_reliable += 1;
        sh.procs[self.idx].journal.push(Entry::ReliableSeq(seq));
        Ok(seq)
    }

    /// One `send_reliable` attempt: dispatch the copy and arm its
    /// retransmission deadline. Replayed attempts re-arm nothing — their
    /// fate was already decided.
    fn send_reliable_attempt(
        &mut self,
        to: ProcessId,
        seq: u64,
        aid: AidId,
        attempt: u32,
        payload: Value,
    ) -> Hope<u64> {
        if let Some(e) = self.replay_next() {
            match e {
                Entry::Send { msg_id } => return Ok(msg_id),
                other => self.diverged("send", &other),
            }
        }
        let mut sh = self.live()?;
        if attempt > 1 {
            sh.stats.faults.retries += 1;
        } else {
            sh.stats.faults.reliable_sends += 1;
        }
        let id = sh.send_message_with(self.idx, to, |_| MsgKind::Reliable { seq, aid }, payload);
        let deadline = backoff_deadline(sh.config.ack_timeout, sh.config.ack_backoff_cap, attempt);
        let at = sh.now + deadline;
        sh.pending_system += 1;
        sh.queue.push(at, EventKind::AckTimeout { aid });
        let pid = self.pid;
        sh.trace(|| format!("{pid}: send m{id} -> {to} [reliable seq={seq} attempt={attempt}]"));
        sh.procs[self.idx].journal.push(Entry::Send { msg_id: id });
        sh.observe(pid, &Action::Send { to, msg: id }, &[]);
        Ok(id)
    }

    /// Receive the next deliverable message (blocking). Ghost messages —
    /// whose tags contain a denied AID — are dropped silently; receiving a
    /// message from a speculative sender implicitly guesses the tag's
    /// undecided AIDs, making this process speculative too.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn recv(&mut self) -> Hope<Message> {
        self.recv_where(&|_| true)
    }

    /// Receive the next deliverable message satisfying `pred`, leaving
    /// non-matching messages queued.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn recv_matching(&mut self, pred: impl Fn(&Message) -> bool) -> Hope<Message> {
        self.recv_where(&pred)
    }

    /// Receive the next deliverable message if one is already queued,
    /// without blocking. Ghost messages encountered during the scan are
    /// dropped. Returns `None` when the mailbox holds nothing deliverable.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn try_recv(&mut self) -> Hope<Option<Message>> {
        self.try_recv_where(&|_| true)
    }

    /// Like [`Ctx::try_recv`], but only considers messages satisfying
    /// `pred`, leaving others queued. Ghosts matching `pred` are dropped
    /// during the scan.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn try_recv_matching(&mut self, pred: impl Fn(&Message) -> bool) -> Hope<Option<Message>> {
        self.try_recv_where(&pred)
    }

    fn try_recv_where(&mut self, pred: &dyn Fn(&Message) -> bool) -> Hope<Option<Message>> {
        if let Some(e) = self.replay_next() {
            match e {
                Entry::Recv(m) => return Ok(Some(*m)),
                Entry::Flag(false) => return Ok(None),
                other => self.diverged("try_recv", &other),
            }
        }
        // One lock for the whole scan: ghost drops stay under the same
        // guard instead of re-acquiring per mailbox entry.
        let mut sh = self.live()?;
        loop {
            let first = sh.procs[self.idx]
                .mailbox
                .iter()
                .find(|(_, m)| pred(m))
                .map(|(k, _)| *k);
            match first {
                None => {
                    sh.procs[self.idx].journal.push(Entry::Flag(false));
                    return Ok(None);
                }
                Some(k) => {
                    let m = sh.procs[self.idx]
                        .mailbox
                        .remove(&k)
                        .expect("key just observed");
                    let pos = sh.procs[self.idx].journal.len() as u64;
                    let (outcome, fx) = sh
                        .engine
                        .implicit_guess(self.pid, &m.tag, Checkpoint(pos))
                        .expect("receive on engine-owned ids");
                    match outcome {
                        ReceiveOutcome::Ghost(denied) => {
                            sh.stats.ghosts_dropped += 1;
                            if sh.fault_denied.contains(&denied) {
                                sh.stats.faults.ghosts_from_faults += 1;
                            }
                            let pid = self.pid;
                            sh.trace(|| {
                                format!("{pid}: ghost m{} dropped ({denied} denied)", m.id)
                            });
                            sh.observe(
                                pid,
                                &Action::GhostDropped {
                                    msg: m.id,
                                    from: m.from,
                                    denied,
                                },
                                &[],
                            );
                            continue;
                        }
                        ReceiveOutcome::Clean | ReceiveOutcome::Speculative(_) => {
                            sh.procs[self.idx]
                                .journal
                                .push(Entry::Recv(Box::new(m.clone())));
                            let rolled = sh.apply_effects(self.idx, &fx);
                            let speculative = matches!(outcome, ReceiveOutcome::Speculative(_));
                            sh.observe(
                                self.pid,
                                &Action::Recv {
                                    msg: m.id,
                                    from: m.from,
                                    speculative,
                                },
                                &fx,
                            );
                            debug_assert!(!rolled, "a receive cannot roll back its receiver");
                            return Ok(Some(m));
                        }
                    }
                }
            }
        }
    }

    /// A synchronous remote procedure call: sends a request and blocks for
    /// the matching reply, returning its payload. This is the *pessimistic*
    /// building block that Call Streaming (the `hope-callstream` crate)
    /// optimistically transforms away.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    pub fn rpc(&mut self, to: ProcessId, payload: impl Into<Value>) -> Hope<Value> {
        let call = self.send_kind(to, MsgKind::Request, payload.into())?;
        let reply = self.recv_matching(|m| m.is_reply_to(call))?;
        Ok(reply.payload)
    }

    /// Reply to a received request.
    ///
    /// # Errors
    ///
    /// [`Signal`]s propagated from the runtime.
    ///
    /// # Panics
    ///
    /// Panics if `req` is not a [`MsgKind::Request`].
    pub fn reply(&mut self, req: &Message, payload: impl Into<Value>) -> Hope<u64> {
        let call = req.kind.call_id().expect("reply target must be a request");
        debug_assert!(matches!(req.kind, MsgKind::Request(_)));
        self.send_kind(req.from, move |_| MsgKind::Reply(call), payload.into())
    }

    fn send_kind(
        &mut self,
        to: ProcessId,
        kind_of: impl FnOnce(u64) -> MsgKind,
        payload: Value,
    ) -> Hope<u64> {
        if let Some(e) = self.replay_next() {
            match e {
                Entry::Send { msg_id } => return Ok(msg_id),
                other => self.diverged("send", &other),
            }
        }
        let mut sh = self.live()?;
        let id = sh.send_message_with(self.idx, to, kind_of, payload);
        let pid = self.pid;
        sh.trace(|| format!("{pid}: send m{id} -> {to}"));
        sh.procs[self.idx].journal.push(Entry::Send { msg_id: id });
        sh.observe(pid, &Action::Send { to, msg: id }, &[]);
        Ok(id)
    }

    fn recv_where(&mut self, pred: &dyn Fn(&Message) -> bool) -> Hope<Message> {
        if let Some(e) = self.replay_next() {
            match e {
                Entry::Recv(m) => return Ok(*m),
                other => self.diverged("recv", &other),
            }
        }
        // One lock per wake-up: the guard is held across ghost drops and
        // released only to park when nothing deliverable is queued.
        let mut sh = self.live()?;
        loop {
            let chosen = sh.procs[self.idx]
                .mailbox
                .iter()
                .find(|(_, m)| pred(m))
                .map(|(k, _)| *k);
            match chosen {
                Some(k) => {
                    let m = sh.procs[self.idx]
                        .mailbox
                        .remove(&k)
                        .expect("key just observed");
                    let pos = sh.procs[self.idx].journal.len() as u64;
                    let (outcome, fx) = sh
                        .engine
                        .implicit_guess(self.pid, &m.tag, Checkpoint(pos))
                        .expect("receive on engine-owned ids");
                    match outcome {
                        ReceiveOutcome::Ghost(denied) => {
                            sh.stats.ghosts_dropped += 1;
                            if sh.fault_denied.contains(&denied) {
                                sh.stats.faults.ghosts_from_faults += 1;
                            }
                            let pid = self.pid;
                            sh.trace(|| {
                                format!("{pid}: ghost m{} dropped ({denied} denied)", m.id)
                            });
                            sh.observe(
                                pid,
                                &Action::GhostDropped {
                                    msg: m.id,
                                    from: m.from,
                                    denied,
                                },
                                &[],
                            );
                            // keep scanning: the ghost is gone for good
                            continue;
                        }
                        ReceiveOutcome::Clean | ReceiveOutcome::Speculative(_) => {
                            let pid = self.pid;
                            sh.trace(|| {
                                format!(
                                    "{pid}: recv m{} from {}{}",
                                    m.id,
                                    m.from,
                                    if matches!(outcome, ReceiveOutcome::Speculative(_)) {
                                        " [speculative]"
                                    } else {
                                        ""
                                    }
                                )
                            });
                            sh.procs[self.idx]
                                .journal
                                .push(Entry::Recv(Box::new(m.clone())));
                            let rolled = sh.apply_effects(self.idx, &fx);
                            let speculative = matches!(outcome, ReceiveOutcome::Speculative(_));
                            sh.observe(
                                self.pid,
                                &Action::Recv {
                                    msg: m.id,
                                    from: m.from,
                                    speculative,
                                },
                                &fx,
                            );
                            debug_assert!(!rolled, "a receive cannot roll back its receiver");
                            return Ok(m);
                        }
                    }
                }
                None => {
                    drop(sh);
                    self.park(ProcState::BlockedRecv)?;
                    sh = self.lock();
                }
            }
        }
    }
}

/// The retransmission deadline for reliable-send `attempt` (1-based):
/// `min(ack_timeout << (attempt-1), ack_backoff_cap)`, with the shift
/// clamped and the multiply saturating so a large configured timeout can
/// never overflow past the cap instead of clamping to it.
fn backoff_deadline(
    timeout: VirtualDuration,
    cap: VirtualDuration,
    attempt: u32,
) -> VirtualDuration {
    let shift = (attempt - 1).min(16);
    timeout.saturating_mul(1u64 << shift).min(cap)
}

#[derive(Debug, Clone, Copy)]
enum Prim {
    Deny,
    FreeOf,
}

impl Prim {
    fn name(self) -> &'static str {
        match self {
            Prim::Deny => "deny",
            Prim::FreeOf => "free_of",
        }
    }

    fn kind(self) -> DecideKind {
        match self {
            Prim::Deny => DecideKind::Deny,
            Prim::FreeOf => DecideKind::FreeOf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let timeout = VirtualDuration::from_millis(50);
        let cap = VirtualDuration::from_millis(400);
        assert_eq!(backoff_deadline(timeout, cap, 1), timeout);
        assert_eq!(
            backoff_deadline(timeout, cap, 2),
            VirtualDuration::from_millis(100)
        );
        // Attempt 4 lands exactly on the cap boundary; everything after
        // stays pinned there.
        assert_eq!(backoff_deadline(timeout, cap, 4), cap);
        assert_eq!(backoff_deadline(timeout, cap, 5), cap);
        assert_eq!(backoff_deadline(timeout, cap, 64), cap);
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        // A timeout near the representable maximum: the shifted multiply
        // must saturate (not wrap past the cap) so the min() still applies.
        let huge = VirtualDuration::from_nanos(u64::MAX / 2);
        let cap = VirtualDuration::from_millis(400);
        for attempt in 1..=40 {
            assert_eq!(backoff_deadline(huge, cap, attempt), cap);
        }
        // And with an uncapped configuration the result pins to the
        // saturated maximum rather than wrapping around to a tiny value.
        let no_cap = VirtualDuration::from_nanos(u64::MAX);
        assert_eq!(backoff_deadline(huge, no_cap, 17), no_cap);
    }
}
