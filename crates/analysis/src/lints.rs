//! The lints, interpreting the [`flow`](crate::flow) results.
//!
//! Every **error**-severity lint comes with a dynamic guarantee, verified
//! mechanically by the agreement test-suite against the abstract machine: if
//! it fires, **no schedule** lets the program run to *full finalization* —
//! completion with every process definite and no rollback event, ghost
//! message, or skipped primitive. The arguments lean on the §5 semantics:
//! deciders are one-shot (a second use is skipped), `free_of` of a
//! depended-on AID is a self-deny (Equation 19), and a guessed AID with no
//! decider pins its guesser speculative forever.
//!
//! Warnings (`invalid-target`'s self-send form, `cascade-depth`) carry no
//! such guarantee — they flag legal but suspicious shapes.

use hope_core::program::{Program, Stmt};

use crate::diagnostics::{Diagnostic, Lint};
use crate::flow::{DeciderKind, Flow};

/// The decider sites of `x` that can ever execute *with effect*.
///
/// A decider site preceded by an earlier decider of the same AID in the
/// same process never takes effect: the earlier site always executes first
/// (program order survives rollback, which resets the counter *before* the
/// earlier site), so by the time the later site runs the AID is either
/// consumed (the later site is skipped) or was released by a rollback that
/// also re-runs the earlier site first. Only the first site per process can
/// change the AID's state.
fn effective_deciders(flow: &Flow, x: usize) -> Vec<(usize, usize, DeciderKind)> {
    let mut out: Vec<(usize, usize, DeciderKind)> = Vec::new();
    for &(p, i, kind) in &flow.deciders[x] {
        // `flow.deciders[x]` is in (process, index) order.
        if out.last().is_none_or(|&(q, _, _)| q != p) {
            out.push((p, i, kind));
        }
    }
    out
}

/// `true` when a decider of `x` at `site` may act as a *deny*: an explicit
/// `deny`, or a `free_of` issued while the asserter may depend on `x`
/// (Equation 19).
fn may_deny(flow: &Flow, x: usize, site: (usize, usize, DeciderKind)) -> bool {
    let (p, i, kind) = site;
    match kind {
        DeciderKind::Deny => true,
        DeciderKind::FreeOf => flow.may_ido[p][i].contains(&x),
        DeciderKind::Affirm => false,
    }
}

/// `invalid-target`: statements naming undeclared processes/AIDs (error;
/// the machine would panic) and self-sends (warning).
pub fn invalid_target(program: &Program, _flow: &Flow) -> Vec<Diagnostic> {
    let procs = program.process_count();
    let aids = program.aid_count;
    let mut out = Vec::new();
    for (p, stmts) in program.code.iter().enumerate() {
        for (i, s) in stmts.iter().enumerate() {
            match *s {
                Stmt::Send { to } if to >= procs => out.push(Diagnostic::error(
                    Lint::InvalidTarget,
                    p,
                    i,
                    format!("send targets P{to} but the program has only {procs} processes"),
                )),
                Stmt::Send { to } if to == p => out.push(Diagnostic::warning(
                    Lint::InvalidTarget,
                    p,
                    i,
                    format!(
                        "process P{p} sends to itself; the message only re-enters its own mailbox"
                    ),
                )),
                Stmt::Guess(x) | Stmt::Affirm(x) | Stmt::Deny(x) | Stmt::FreeOf(x) if x >= aids => {
                    out.push(Diagnostic::error(
                        Lint::InvalidTarget,
                        p,
                        i,
                        format!("statement names x{x} but the program declares only {aids} AIDs"),
                    ));
                }
                _ => {}
            }
        }
    }
    out
}

/// `leaked-speculation`: an AID is guessed somewhere but no decider of it
/// exists anywhere (error).
///
/// Dynamic guarantee: the AID stays `Undecided` forever, so every executed
/// `guess` of it opens a speculative interval that nothing can finalize —
/// the guesser is speculative (or rolled back) at completion.
pub fn leaked_speculation(_program: &Program, flow: &Flow) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (x, sites) in flow.guess_sites.iter().enumerate() {
        if sites.is_empty() || !flow.deciders[x].is_empty() {
            continue;
        }
        let &(p, i) = sites.first().expect("non-empty checked above");
        let extra = if sites.len() > 1 {
            format!(
                " (and {} more guess site{})",
                sites.len() - 1,
                if sites.len() == 2 { "" } else { "s" }
            )
        } else {
            String::new()
        };
        out.push(
            Diagnostic::error(
                Lint::LeakedSpeculation,
                p,
                i,
                format!(
                    "x{x} is guessed here{extra} but no affirm/deny/free_of of x{x} exists \
                     anywhere; the guessing process can never become definite"
                ),
            )
            .with_aid(x),
        );
    }
    out
}

/// `doomed-free-of`: a process guesses an AID and later asserts `free_of`
/// of it, with no intervening decider of that AID in the same process
/// (error).
///
/// Dynamic guarantee: when the `free_of` executes, either the AID is still
/// in the asserter's dependence set — Equation 19 turns the assertion into
/// a definite deny that rolls the asserter itself back — or the AID was
/// already consumed (by another process, or by an earlier incarnation of
/// this statement after a rollback) and the primitive is skipped. Either
/// way the run is not pristine. With an intervening decider the second use
/// is `consumed-reassertion`'s finding instead, so each defect is reported
/// once.
pub fn doomed_free_of(program: &Program, _flow: &Flow) -> Vec<Diagnostic> {
    let aids = program.aid_count;
    let mut out = Vec::new();
    for (p, stmts) in program.code.iter().enumerate() {
        for (j, s) in stmts.iter().enumerate() {
            let Stmt::FreeOf(x) = *s else { continue };
            if x >= aids {
                continue; // invalid-target's finding
            }
            let guess_at = stmts[..j]
                .iter()
                .rposition(|t| matches!(t, Stmt::Guess(y) if *y == x));
            let Some(i) = guess_at else { continue };
            let intervening = stmts[i + 1..j]
                .iter()
                .any(|t| matches!(t, Stmt::Affirm(y) | Stmt::Deny(y) | Stmt::FreeOf(y) if *y == x));
            if !intervening {
                out.push(
                    Diagnostic::error(
                        Lint::DoomedFreeOf,
                        p,
                        j,
                        format!(
                            "free_of(x{x}) follows guess(x{x}) at P{p}:{i}: the asserter depends \
                             on x{x}, so this is a self-deny (Equation 19) or a skipped re-use on \
                             every schedule"
                        ),
                    )
                    .with_aid(x),
                );
            }
        }
    }
    out
}

/// `consumed-reassertion`: an AID has more than one decider statement in
/// the whole program (error).
///
/// Dynamic guarantee: deciders are one-shot (§5.2). Whichever decider
/// executes second finds the AID consumed and is skipped — unless a
/// rollback released it in between (a speculative deny undone by rollback),
/// but that rollback already broke the run. The diagnostic is anchored at
/// the second site in program order.
pub fn consumed_reassertion(_program: &Program, flow: &Flow) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (x, sites) in flow.deciders.iter().enumerate() {
        if sites.len() < 2 {
            continue;
        }
        let described: Vec<String> = sites
            .iter()
            .map(|&(p, i, kind)| format!("{}(x{x}) at P{p}:{i}", kind.name()))
            .collect();
        let &(p, i, _) = &sites[1];
        out.push(
            Diagnostic::error(
                Lint::ConsumedReassertion,
                p,
                i,
                format!(
                    "x{x} is decided {} times ({}); affirm/deny/free_of are one-shot, so all but \
                     one use is skipped or undone on every schedule",
                    sites.len(),
                    described.join(", "),
                ),
            )
            .with_aid(x),
        );
    }
    out
}

/// `unreachable-recv`: a process has more `recv` statements than messages
/// the whole program can ever send to it (error).
///
/// Dynamic guarantee: in a run with no rollbacks each in-range `send`
/// executes at most once, so at most [`Flow::sends_to`] messages ever reach
/// the process; its surplus `recv`s block forever and the program never
/// completes. (Rollback re-sends can manufacture extra messages, but a
/// rollback already breaks the run.)
pub fn unreachable_recv(program: &Program, flow: &Flow) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (p, stmts) in program.code.iter().enumerate() {
        let recvs = flow.recv_count[p];
        let sends = flow.sends_to[p];
        if recvs <= sends {
            continue;
        }
        // Anchor at the first recv that can never be satisfied.
        let site = stmts
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Stmt::Recv))
            .nth(sends)
            .map(|(i, _)| i)
            .expect("recvs > sends implies a surplus recv exists");
        out.push(Diagnostic::error(
            Lint::UnreachableRecv,
            p,
            site,
            format!(
                "process P{p} executes {recvs} recv{} but the whole program sends it at most \
                 {sends} message{}; this recv can never be satisfied",
                if recvs == 1 { "" } else { "s" },
                if sends == 1 { "" } else { "s" },
            ),
        ));
    }
    out
}

/// `cascade-depth`: denying one AID may roll back speculation across at
/// least `threshold` processes (warning).
///
/// Uses the flow fixpoint's [`Flow::dependents`] — the transitive
/// may-depend set through message tags — so the estimate covers relayed
/// dependence, not just direct guessers.
pub fn cascade_depth(_program: &Program, flow: &Flow, threshold: usize) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (x, procs) in flow.dependents.iter().enumerate() {
        if procs.len() < threshold {
            continue;
        }
        let Some(&(p, i)) = flow.guess_sites[x].first() else {
            continue;
        };
        let members: Vec<String> = procs.iter().map(|q| format!("P{q}")).collect();
        out.push(
            Diagnostic::warning(
                Lint::CascadeDepth,
                p,
                i,
                format!(
                    "a deny of x{x} may cascade a rollback across {} processes ({}); consider \
                     affirming earlier or narrowing the speculation",
                    procs.len(),
                    members.join(", "),
                ),
            )
            .with_aid(x),
        );
    }
    out
}

/// `dependent-deny`: a `deny(x)`/`free_of(x)` site where the decider itself
/// may depend on `x` (warning).
///
/// Equation 15 (deny) and Equation 19 (free_of) make such a decide a
/// *definite self-deny*: it survives the rollback it causes, the decider
/// re-executes from its checkpoint, and the statement's own re-execution is
/// skipped as consumed — the single-site form of decided-AID reuse. Sites
/// already reported by `doomed-free-of` (which proves the dependence on
/// every schedule and is an error) are skipped; this warning covers the
/// may-side: dependence through a received tag or a speculative affirm's
/// substitution.
pub fn dependent_deny(program: &Program, flow: &Flow) -> Vec<Diagnostic> {
    let aids = program.aid_count;
    let mut out = Vec::new();
    for x in 0..aids {
        for site in effective_deciders(flow, x) {
            let (p, i, kind) = site;
            if kind == DeciderKind::Affirm || !flow.may_ido[p][i].contains(&x) {
                continue;
            }
            if kind == DeciderKind::FreeOf && doomed_free_of_condition(program, x, p, i) {
                continue; // doomed-free-of's (stronger) finding
            }
            out.push(
                Diagnostic::warning(
                    Lint::DependentDeny,
                    p,
                    i,
                    format!(
                        "{}(x{x}) may execute while P{p} itself depends on x{x}: that is a \
                         definite self-deny (Equation {}) which rolls P{p} back and skips this \
                         statement's re-execution",
                        kind.name(),
                        if kind == DeciderKind::Deny {
                            "15"
                        } else {
                            "19"
                        },
                    ),
                )
                .with_aid(x),
            );
        }
    }
    out
}

/// `ghost-risk`: a `send` whose tag may carry an AID that some decider can
/// deny — the message may be condemned in flight and dropped as a ghost
/// (§7) (warning).
pub fn ghost_risk(program: &Program, flow: &Flow) -> Vec<Diagnostic> {
    let procs = program.process_count();
    let mut out = Vec::new();
    for (p, stmts) in program.code.iter().enumerate() {
        for (i, s) in stmts.iter().enumerate() {
            let Stmt::Send { to } = *s else { continue };
            if to >= procs {
                continue; // invalid-target's finding
            }
            for &x in &flow.may_ido[p][i] {
                let Some(denier) = effective_deciders(flow, x)
                    .into_iter()
                    .find(|&site| may_deny(flow, x, site))
                else {
                    continue;
                };
                let (q, k, kind) = denier;
                out.push(
                    Diagnostic::warning(
                        Lint::GhostRisk,
                        p,
                        i,
                        format!(
                            "this send's tag may carry x{x}, which {}(x{x}) at P{q}:{k} can \
                             deny; the message would be condemned as a ghost and silently \
                             dropped (§7)",
                            kind.name(),
                        ),
                    )
                    .with_aid(x),
                );
            }
        }
    }
    out
}

/// `guess-decide-race`: a `guess(x)` that another process's deny may beat —
/// the guess would return `false` with no causal link to the decide
/// (warning).
///
/// Only deny-capable deciders in *other* processes qualify: a same-process
/// decide is ordered by program order (or by the rollback it causes), and an
/// affirm never makes a later guess fail — it merely contributes no
/// dependence.
pub fn guess_decide_race(program: &Program, flow: &Flow) -> Vec<Diagnostic> {
    let aids = program.aid_count;
    let mut out = Vec::new();
    for x in 0..aids {
        for &(p, i) in &flow.guess_sites[x] {
            let Some(denier) = effective_deciders(flow, x)
                .into_iter()
                .find(|&site| site.0 != p && may_deny(flow, x, site))
            else {
                continue;
            };
            let (q, k, kind) = denier;
            out.push(
                Diagnostic::warning(
                    Lint::GuessDecideRace,
                    p,
                    i,
                    format!(
                        "guess(x{x}) races {}(x{x}) at P{q}:{k}: if the deny lands first, this \
                         guess returns false with no causal link to the decision",
                        kind.name(),
                    ),
                )
                .with_aid(x),
            );
        }
    }
    out
}

/// `doomed-free-of`'s exact trigger at one site: a same-process `guess(x)`
/// earlier than statement `j` with no intervening decider of `x`.
fn doomed_free_of_condition(program: &Program, x: usize, p: usize, j: usize) -> bool {
    let stmts = &program.code[p];
    let Some(i) = stmts[..j]
        .iter()
        .rposition(|t| matches!(t, Stmt::Guess(y) if *y == x))
    else {
        return false;
    };
    !stmts[i + 1..j]
        .iter()
        .any(|t| matches!(t, Stmt::Affirm(y) | Stmt::Deny(y) | Stmt::FreeOf(y) if *y == x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::Severity;
    use crate::flow::analyze;

    fn lint_names(program: &Program, threshold: usize) -> Vec<(&'static str, Severity)> {
        let flow = analyze(program);
        let mut out = Vec::new();
        out.extend(invalid_target(program, &flow));
        out.extend(leaked_speculation(program, &flow));
        out.extend(doomed_free_of(program, &flow));
        out.extend(consumed_reassertion(program, &flow));
        out.extend(unreachable_recv(program, &flow));
        out.extend(cascade_depth(program, &flow, threshold));
        out.extend(dependent_deny(program, &flow));
        out.extend(ghost_risk(program, &flow));
        out.extend(guess_decide_race(program, &flow));
        out.into_iter()
            .map(|d| (d.lint.name(), d.severity))
            .collect()
    }

    #[test]
    fn clean_program_is_clean() {
        let program = Program::new(vec![
            vec![Stmt::Guess(0), Stmt::Compute, Stmt::Send { to: 1 }],
            vec![Stmt::Affirm(0), Stmt::Recv],
        ]);
        assert!(lint_names(&program, 3).is_empty());
    }

    #[test]
    fn each_lint_fires_on_its_trigger() {
        let leaked = Program::new(vec![vec![Stmt::Guess(0)]]);
        assert_eq!(
            lint_names(&leaked, 9),
            vec![("leaked-speculation", Severity::Error)]
        );

        let doomed = Program::new(vec![vec![Stmt::Guess(0), Stmt::FreeOf(0)]]);
        assert_eq!(
            lint_names(&doomed, 9),
            vec![("doomed-free-of", Severity::Error)]
        );

        let reassert = Program::new(vec![vec![Stmt::Affirm(0), Stmt::Affirm(0)]]);
        assert_eq!(
            lint_names(&reassert, 9),
            vec![("consumed-reassertion", Severity::Error)]
        );

        let starved = Program::new(vec![vec![Stmt::Recv]]);
        assert_eq!(
            lint_names(&starved, 9),
            vec![("unreachable-recv", Severity::Error)]
        );

        let wild_send = Program::new(vec![vec![Stmt::Send { to: 4 }]]);
        assert_eq!(
            lint_names(&wild_send, 9),
            vec![("invalid-target", Severity::Error)]
        );

        let self_send = Program::new(vec![vec![Stmt::Send { to: 0 }, Stmt::Recv]]);
        assert_eq!(
            lint_names(&self_send, 9),
            vec![("invalid-target", Severity::Warning)]
        );

        let fan_out = Program::new(vec![
            vec![
                Stmt::Guess(0),
                Stmt::Send { to: 1 },
                Stmt::Send { to: 2 },
                Stmt::Affirm(0),
            ],
            vec![Stmt::Recv],
            vec![Stmt::Recv],
        ]);
        assert_eq!(
            lint_names(&fan_out, 3),
            vec![("cascade-depth", Severity::Warning)]
        );
        assert!(lint_names(&fan_out, 4).is_empty(), "below threshold");
    }

    #[test]
    fn doomed_free_of_spares_intervened_and_cross_process_uses() {
        // Intervening affirm: the free_of re-use is consumed-reassertion's
        // finding, not doomed-free-of's.
        let intervened = Program::new(vec![vec![Stmt::Guess(0), Stmt::Affirm(0), Stmt::FreeOf(0)]]);
        assert_eq!(
            lint_names(&intervened, 9),
            vec![("consumed-reassertion", Severity::Error)]
        );

        // Cross-process free_of of a guessed AID is legal (Equation 17/18).
        let cross = Program::new(vec![vec![Stmt::Guess(0)], vec![Stmt::FreeOf(0)]]);
        assert!(lint_names(&cross, 9).is_empty());
    }

    #[test]
    fn dependent_deny_fires_on_may_dependence_only() {
        // Dependence through a received tag: doomed-free-of cannot prove it,
        // dependent-deny warns.
        let tagged = Program::new(vec![
            vec![Stmt::Guess(0), Stmt::Send { to: 1 }, Stmt::Affirm(0)],
            vec![Stmt::Recv, Stmt::Deny(1), Stmt::Guess(1)],
        ]);
        // x1 is never guessed before the deny: no dependence, no warning …
        let flow = analyze(&tagged);
        assert!(dependent_deny(&tagged, &flow).is_empty());

        // … but deny of the *received* x0 dependence is flagged.
        let racy = Program::new(vec![
            vec![Stmt::Guess(0), Stmt::Send { to: 1 }],
            vec![Stmt::Recv, Stmt::Deny(0)],
        ]);
        let flow = analyze(&racy);
        let ds = dependent_deny(&racy, &flow);
        assert_eq!(ds.len(), 1);
        assert_eq!(
            (ds[0].proc, ds[0].stmt_idx, ds[0].aid),
            (Some(1), Some(1), Some(0))
        );

        // A deny of one's own guess is the single-process form.
        let self_deny = Program::new(vec![vec![Stmt::Guess(0), Stmt::Deny(0)]]);
        let flow = analyze(&self_deny);
        assert_eq!(dependent_deny(&self_deny, &flow).len(), 1);

        // The free_of form is doomed-free-of's finding, not ours.
        let doomed = Program::new(vec![vec![Stmt::Guess(0), Stmt::FreeOf(0)]]);
        let flow = analyze(&doomed);
        assert!(dependent_deny(&doomed, &flow).is_empty());
    }

    #[test]
    fn ghost_risk_needs_a_tagged_send_and_a_denier() {
        let risky = Program::new(vec![
            vec![Stmt::Guess(0), Stmt::Send { to: 1 }, Stmt::Deny(0)],
            vec![Stmt::Recv],
        ]);
        let flow = analyze(&risky);
        let ds = ghost_risk(&risky, &flow);
        assert_eq!(ds.len(), 1);
        assert_eq!(
            (ds[0].proc, ds[0].stmt_idx, ds[0].aid),
            (Some(0), Some(1), Some(0))
        );

        // An affirm cannot condemn the message: no ghost possible.
        let safe = Program::new(vec![
            vec![Stmt::Guess(0), Stmt::Send { to: 1 }, Stmt::Affirm(0)],
            vec![Stmt::Recv],
        ]);
        let flow = analyze(&safe);
        assert!(ghost_risk(&safe, &flow).is_empty());

        // An untagged send is never a ghost.
        let untagged = Program::new(vec![
            vec![
                Stmt::Guess(0),
                Stmt::Affirm(0),
                Stmt::Send { to: 1 },
                Stmt::Deny(1),
            ],
            vec![Stmt::Recv, Stmt::Guess(1)],
        ]);
        let flow = analyze(&untagged);
        assert!(ghost_risk(&untagged, &flow).is_empty());
    }

    #[test]
    fn guess_decide_race_needs_a_foreign_denier() {
        let racy = Program::new(vec![vec![Stmt::Guess(0)], vec![Stmt::Deny(0)]]);
        let flow = analyze(&racy);
        let ds = guess_decide_race(&racy, &flow);
        assert_eq!(ds.len(), 1);
        assert_eq!(
            (ds[0].proc, ds[0].stmt_idx, ds[0].aid),
            (Some(0), Some(0), Some(0))
        );

        // A cross-process affirm is the canonical worker/worrywart pattern:
        // never flagged.
        let canonical = Program::new(vec![
            vec![Stmt::Guess(0), Stmt::Compute],
            vec![Stmt::Affirm(0)],
        ]);
        let flow = analyze(&canonical);
        assert!(guess_decide_race(&canonical, &flow).is_empty());

        // An independent cross-process free_of is an affirm (Eq. 17/18):
        // not a denier.
        let free = Program::new(vec![
            vec![Stmt::Guess(0), Stmt::Compute],
            vec![Stmt::FreeOf(0)],
        ]);
        let flow = analyze(&free);
        assert!(guess_decide_race(&free, &flow).is_empty());

        // A same-process deny is ordered by program order or rollback.
        let ordered = Program::new(vec![vec![Stmt::Deny(0), Stmt::Guess(0)]]);
        let flow = analyze(&ordered);
        assert!(guess_decide_race(&ordered, &flow).is_empty());

        // A second decider site in the denier's process never executes with
        // effect, so it is not a denier.
        let shadowed = Program::new(vec![
            vec![Stmt::Guess(0), Stmt::Compute],
            vec![Stmt::Affirm(0), Stmt::Deny(0)],
        ]);
        let flow = analyze(&shadowed);
        assert!(guess_decide_race(&shadowed, &flow).is_empty());
    }

    #[test]
    fn unreachable_recv_counts_program_wide_sends() {
        let balanced = Program::new(vec![
            vec![Stmt::Recv, Stmt::Recv],
            vec![Stmt::Send { to: 0 }],
            vec![Stmt::Send { to: 0 }],
        ]);
        assert!(lint_names(&balanced, 9).is_empty());

        let starved = Program::new(vec![
            vec![Stmt::Recv, Stmt::Recv],
            vec![Stmt::Send { to: 0 }],
        ]);
        let flow = analyze(&starved);
        let ds = unreachable_recv(&starved, &flow);
        assert_eq!(ds.len(), 1);
        assert_eq!((ds[0].proc, ds[0].stmt_idx), (Some(0), Some(1)));
    }
}
