//! Dependence-flow analysis: an over-approximate abstract interpretation of
//! a [`Program`]'s speculation state.
//!
//! The concrete semantics tracks, per process, the `IDO` set of the current
//! interval — the AIDs the process's state may depend on (§4–5). Statically
//! we compute a *may*-IDO: for every program point, the set of AID
//! variables that can be in the process's dependence set there under **some**
//! schedule. Dependence enters at a `guess` and flows across processes
//! through message tags: a `send` publishes the sender's may-IDO on the
//! channel, and a `recv` joins every tag that any process may send to the
//! receiver (§3's implicit guess).
//!
//! Because tags can flow transitively (P guesses, sends to Q; Q sends to R),
//! the channel summaries and the per-point sets are computed as a joint
//! fixpoint. All transfer functions only add elements, the domain is finite
//! (processes × points × AIDs), so the iteration terminates.
//!
//! A local `affirm(x)`/`deny(x)`/`free_of(x)` *kills* `x` in the asserter's
//! own may-IDO: in every non-degenerate execution the decider removes the
//! AID from its own interval's `IDO` (a definite affirm discharges it, a
//! speculative self-affirm dissolves it, a deny of a depended-on AID resets
//! the process to its pre-guess state). The degenerate cases — the decider
//! is skipped as consumed, or never executes — only arise in runs that are
//! already broken, which is acceptable imprecision because nothing with an
//! error-severity guarantee reads may-IDO; the flow feeds the cascade
//! fan-out *warning* and tooling. Alongside the flow itself, the pass
//! gathers the syntactic site tables ([`guess_sites`], [`deciders`],
//! send/recv counts) that the lints interpret.
//!
//! [`guess_sites`]: Flow::guess_sites
//! [`deciders`]: Flow::deciders

use std::collections::{BTreeMap, BTreeSet};

use hope_core::program::{AidVar, ProcIdx, Program, Stmt};

/// What kind of decider statement consumed an AID.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeciderKind {
    /// `affirm(x)`.
    Affirm,
    /// `deny(x)`.
    Deny,
    /// `free_of(x)`.
    FreeOf,
}

impl DeciderKind {
    /// The statement keyword.
    pub fn name(self) -> &'static str {
        match self {
            DeciderKind::Affirm => "affirm",
            DeciderKind::Deny => "deny",
            DeciderKind::FreeOf => "free_of",
        }
    }
}

/// A statement site: `(process, statement index)`.
pub type Site = (ProcIdx, usize);

/// The result of [`analyze`]: may-IDO sets, channel summaries, and the
/// syntactic site tables the lints consume.
#[derive(Debug, Clone)]
pub struct Flow {
    /// `may_ido[p][i]` is the set of AID variables that may be in process
    /// `p`'s dependence set *before* statement `i` executes;
    /// `may_ido[p][code[p].len()]` is the set at process exit.
    pub may_ido: Vec<Vec<BTreeSet<AidVar>>>,
    /// For each channel `(from, to)` with at least one in-range `send`, the
    /// union of tags that may be sent on it.
    pub edge_tags: BTreeMap<(ProcIdx, ProcIdx), BTreeSet<AidVar>>,
    /// `dependents[x]` is the set of processes whose state may come to
    /// depend on AID `x` (the static bound on a deny-of-`x` cascade).
    pub dependents: Vec<BTreeSet<ProcIdx>>,
    /// `guess_sites[x]` lists every explicit `guess(x)` site in program
    /// order.
    pub guess_sites: Vec<Vec<Site>>,
    /// `deciders[x]` lists every `affirm(x)`/`deny(x)`/`free_of(x)` site in
    /// program order.
    pub deciders: Vec<Vec<(ProcIdx, usize, DeciderKind)>>,
    /// `sends_to[p]` counts the `send` statements targeting process `p`
    /// (in-range targets only).
    pub sends_to: Vec<usize>,
    /// `recv_count[p]` counts the `recv` statements of process `p`.
    pub recv_count: Vec<usize>,
}

/// Run the dependence-flow analysis over `program`.
///
/// Statements that name out-of-range processes or AIDs (see
/// [`Lint::InvalidTarget`](crate::Lint::InvalidTarget)) are ignored by the
/// flow itself — the analysis never panics on malformed programs; the lint
/// layer reports them.
pub fn analyze(program: &Program) -> Flow {
    let procs = program.process_count();
    let aids = program.aid_count;

    let mut guess_sites: Vec<Vec<Site>> = vec![Vec::new(); aids];
    let mut deciders: Vec<Vec<(ProcIdx, usize, DeciderKind)>> = vec![Vec::new(); aids];
    let mut sends_to = vec![0usize; procs];
    let mut recv_count = vec![0usize; procs];
    for (p, stmts) in program.code.iter().enumerate() {
        for (i, s) in stmts.iter().enumerate() {
            match *s {
                Stmt::Guess(x) if x < aids => guess_sites[x].push((p, i)),
                Stmt::Affirm(x) if x < aids => deciders[x].push((p, i, DeciderKind::Affirm)),
                Stmt::Deny(x) if x < aids => deciders[x].push((p, i, DeciderKind::Deny)),
                Stmt::FreeOf(x) if x < aids => deciders[x].push((p, i, DeciderKind::FreeOf)),
                Stmt::Send { to } if to < procs => sends_to[to] += 1,
                Stmt::Recv => recv_count[p] += 1,
                _ => {}
            }
        }
    }

    let mut may_ido: Vec<Vec<BTreeSet<AidVar>>> = program
        .code
        .iter()
        .map(|stmts| vec![BTreeSet::new(); stmts.len() + 1])
        .collect();
    let mut edge_tags: BTreeMap<(ProcIdx, ProcIdx), BTreeSet<AidVar>> = BTreeMap::new();

    // Joint fixpoint of per-point sets and channel summaries. Points only
    // ever grow (the kill in the decider transfer stops *propagation* past
    // the decider; it never shrinks a point that already holds the AID from
    // another source, such as the substitution rule below), so termination
    // follows from the finite domain.
    loop {
        let mut changed = false;
        for (p, stmts) in program.code.iter().enumerate() {
            for (i, s) in stmts.iter().enumerate() {
                // Transfer: out ∪= thru(in, stmt).
                let mut thru = may_ido[p][i].clone();
                match *s {
                    Stmt::Guess(x) if x < aids => {
                        thru.insert(x);
                    }
                    Stmt::Affirm(x) | Stmt::Deny(x) | Stmt::FreeOf(x) if x < aids => {
                        thru.remove(&x);
                    }
                    Stmt::Recv => {
                        for ((_, to), tag) in &edge_tags {
                            if *to == p {
                                thru.extend(tag.iter().copied());
                            }
                        }
                    }
                    Stmt::Send { to } if to < procs => {
                        let tag = edge_tags.entry((p, to)).or_default();
                        let before = tag.len();
                        tag.extend(may_ido[p][i].iter().copied());
                        changed |= tag.len() != before;
                    }
                    _ => {}
                }
                let before = may_ido[p][i + 1].len();
                may_ido[p][i + 1].extend(thru);
                changed |= may_ido[p][i + 1].len() != before;
            }
        }

        // Speculative-affirm substitution (Equations 10–14, statically): an
        // `affirm(x)` — or a `free_of(x)`, which affirms when the asserter
        // is independent (Equations 17–18) — issued while the asserter may
        // itself be speculative does not discharge dependence on `x`; it
        // *replaces* it with dependence on the asserter's own `IDO`. So for
        // every may-speculative affirm site, every point that may hold `x`
        // may instead hold the asserter's dependence set at that site.
        // Without this rule a dynamic rollback reached through a
        // substituted dependence would have no static witness.
        for (x, sites) in deciders.iter().enumerate() {
            for &(q, j, kind) in sites {
                if kind == DeciderKind::Deny {
                    continue;
                }
                let t: Vec<AidVar> = may_ido[q][j].iter().copied().filter(|&y| y != x).collect();
                if t.is_empty() {
                    continue;
                }
                for points in may_ido.iter_mut() {
                    for point in points.iter_mut() {
                        if !point.contains(&x) {
                            continue;
                        }
                        let before = point.len();
                        point.extend(t.iter().copied());
                        changed |= point.len() != before;
                    }
                }
            }
        }

        if !changed {
            break;
        }
    }

    // A process "may depend" on x if x is in its may-IDO at *any* point —
    // a later kill does not undo that the rollback exposure existed.
    let mut dependents = vec![BTreeSet::new(); aids];
    for (p, points) in may_ido.iter().enumerate() {
        for point in points {
            for &x in point {
                dependents[x].insert(p);
            }
        }
    }

    Flow {
        may_ido,
        edge_tags,
        dependents,
        guess_sites,
        deciders,
        sends_to,
        recv_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guess_enters_ido_and_send_publishes_it() {
        let program = Program::new(vec![
            vec![Stmt::Guess(0), Stmt::Send { to: 1 }],
            vec![Stmt::Recv],
        ]);
        let flow = analyze(&program);
        assert!(flow.may_ido[0][0].is_empty());
        assert!(flow.may_ido[0][1].contains(&0));
        assert_eq!(flow.edge_tags[&(0, 1)], BTreeSet::from([0]));
        assert!(flow.may_ido[1][1].contains(&0), "recv joins the tag");
        assert_eq!(flow.dependents[0], BTreeSet::from([0, 1]));
    }

    #[test]
    fn dependence_flows_transitively_through_relays() {
        // P0 guesses and sends to P1; P1 relays to P2; P2 relays to P3.
        let program = Program::new(vec![
            vec![Stmt::Guess(0), Stmt::Send { to: 1 }],
            vec![Stmt::Recv, Stmt::Send { to: 2 }],
            vec![Stmt::Recv, Stmt::Send { to: 3 }],
            vec![Stmt::Recv],
        ]);
        let flow = analyze(&program);
        assert_eq!(flow.dependents[0], BTreeSet::from([0, 1, 2, 3]));
        assert_eq!(flow.edge_tags[&(2, 3)], BTreeSet::from([0]));
    }

    #[test]
    fn send_before_guess_publishes_nothing() {
        let program = Program::new(vec![
            vec![Stmt::Send { to: 1 }, Stmt::Guess(0)],
            vec![Stmt::Recv],
        ]);
        let flow = analyze(&program);
        assert!(flow.edge_tags[&(0, 1)].is_empty());
        assert_eq!(flow.dependents[0], BTreeSet::from([0]));
    }

    #[test]
    fn cyclic_channels_reach_a_fixpoint() {
        // P0 and P1 mutually send/recv; both guess distinct AIDs. The
        // fixpoint must converge with both AIDs on both processes.
        let program = Program::new(vec![
            vec![Stmt::Guess(0), Stmt::Recv, Stmt::Send { to: 1 }],
            vec![Stmt::Guess(1), Stmt::Recv, Stmt::Send { to: 0 }],
        ]);
        let flow = analyze(&program);
        assert_eq!(flow.dependents[0], BTreeSet::from([0, 1]));
        assert_eq!(flow.dependents[1], BTreeSet::from([0, 1]));
    }

    #[test]
    fn site_tables_are_complete_and_in_order() {
        let program = Program::new(vec![
            vec![Stmt::Guess(0), Stmt::Affirm(0), Stmt::Recv],
            vec![Stmt::Deny(1), Stmt::FreeOf(0), Stmt::Send { to: 0 }],
        ]);
        let flow = analyze(&program);
        assert_eq!(flow.guess_sites[0], vec![(0, 0)]);
        assert_eq!(
            flow.deciders[0],
            vec![(0, 1, DeciderKind::Affirm), (1, 1, DeciderKind::FreeOf)]
        );
        assert_eq!(flow.deciders[1], vec![(1, 0, DeciderKind::Deny)]);
        assert_eq!(flow.sends_to, vec![1, 0]);
        assert_eq!(flow.recv_count, vec![1, 0]);
    }

    #[test]
    fn speculative_affirm_substitutes_dependence() {
        // P1 affirms x0 while speculative on x1 (Equations 10–14): P0's
        // dependence on x0 is replaced by dependence on x1, so P0's
        // deny(x1) site must see x1 in its own may-IDO — the concrete run
        // really can self-deny there and roll P0 back.
        let program = Program::new(vec![
            vec![Stmt::Guess(0), Stmt::Deny(1)],
            vec![Stmt::Guess(1), Stmt::Affirm(0)],
        ]);
        let flow = analyze(&program);
        assert!(
            flow.may_ido[0][1].contains(&1),
            "substitution must inject x1 into P0's point holding x0: {:?}",
            flow.may_ido
        );
        assert!(flow.dependents[1].contains(&0));

        // A *definite* affirm (empty asserter IDO) substitutes nothing.
        let definite = Program::new(vec![
            vec![Stmt::Guess(0), Stmt::Compute],
            vec![Stmt::Affirm(0)],
        ]);
        let flow = analyze(&definite);
        assert_eq!(flow.may_ido[0][1], BTreeSet::from([0]));
    }

    #[test]
    fn out_of_range_references_are_ignored_not_panicked() {
        let program = Program {
            code: vec![vec![Stmt::Guess(7), Stmt::Send { to: 9 }, Stmt::Affirm(7)]],
            aid_count: 1,
        };
        let flow = analyze(&program);
        assert!(flow.guess_sites[0].is_empty());
        assert!(flow.deciders[0].is_empty());
        assert!(flow.edge_tags.is_empty());
        assert_eq!(flow.may_ido[0][3], BTreeSet::new());
    }
}
