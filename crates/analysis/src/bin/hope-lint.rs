//! `hope-lint`: run the static speculation-flow lints over a HOPE program.
//!
//! See [`HELP`] for the full option and exit-status contract.

use std::io::{ErrorKind, Read, Write};
use std::process::ExitCode;

use hope_analysis::cost::{self, CostWeights};
use hope_analysis::{render_json, render_text, Analyzer, Severity, DEFAULT_CASCADE_THRESHOLD};
use hope_core::program::Program;
use hope_mc::{check, Completeness, McConfig, McReport};

const USAGE: &str = "usage: hope-lint [--json] [--print] [--rank | --cost] [--mc] \
                     [--mc-states N] [--cascade-threshold N] \
                     <FILE | - | --generate SEED,PROCS,LEN,AIDS>";

/// The `--help` text: options plus the exit-status contract scripts rely
/// on.
const HELP: &str = "\
hope-lint — static speculation-flow analysis for HOPE programs

usage: hope-lint [OPTIONS] <FILE | - | --generate SEED,PROCS,LEN,AIDS>

Program sources (exactly one):
  FILE                     a program in Program's display syntax
  -                        read the program from stdin
  --generate S,P,L,A       analyze Program::generate(S, P, L, A) instead

Options:
  --json                   emit the output as JSON instead of text
  --print                  also print the program before the output
  --cascade-threshold N    cascade-depth warning threshold (default 3)
  --rank                   print guess sites ranked by expected rollback
                           damage (highest first) instead of diagnostics
  --cost                   like --rank, but in program order and without
                           rank numbers
  --mc                     also model-check the full schedule space
                           (hope-mc) and report whether it confirms the
                           static verdict; cannot combine with --rank/--cost
  --mc-states N            state budget for --mc (default 200000)
  -h, --help               show this help and exit 0

Exit status:
  0  the program was analyzed and no error-severity diagnostic fired;
     warnings do not change the exit status, and neither do --rank/--cost
     (they swap the *output*, not the verdict — the lints still run)
  1  at least one error-severity diagnostic fired: no schedule lets the
     program run to full finalization
  2  usage error, unreadable input, or program parse failure — or, under
     --mc, the model checker exhausted the schedule space and found a
     pristine schedule for an error-flagged program (an analyzer
     soundness bug: report it)
";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Lint,
    Rank,
    Cost,
}

struct Options {
    json: bool,
    print: bool,
    mode: Mode,
    threshold: usize,
    mc: Option<McConfig>,
    source: Source,
}

enum Source {
    File(String),
    Stdin,
    Generate {
        seed: u64,
        procs: usize,
        len: usize,
        aids: usize,
    },
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut json = false;
    let mut print = false;
    let mut mode = Mode::Lint;
    let mut threshold = DEFAULT_CASCADE_THRESHOLD;
    let mut mc: Option<McConfig> = None;
    let mut source: Option<Source> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--print" => print = true,
            "--mc" => mc = Some(mc.unwrap_or_default()),
            "--mc-states" => {
                let value = it.next().ok_or("--mc-states needs a value")?;
                let max_states = value
                    .parse()
                    .map_err(|_| format!("bad --mc-states value `{value}`"))?;
                let cfg = mc.get_or_insert_with(McConfig::default);
                cfg.max_states = max_states;
            }
            "--rank" | "--cost" => {
                let wanted = if arg == "--rank" {
                    Mode::Rank
                } else {
                    Mode::Cost
                };
                if mode != Mode::Lint && mode != wanted {
                    return Err("--rank and --cost cannot be combined".into());
                }
                mode = wanted;
            }
            "--cascade-threshold" => {
                let value = it.next().ok_or("--cascade-threshold needs a value")?;
                threshold = value
                    .parse()
                    .map_err(|_| format!("bad --cascade-threshold value `{value}`"))?;
            }
            "--generate" => {
                let spec = it.next().ok_or("--generate needs SEED,PROCS,LEN,AIDS")?;
                let parts: Vec<&str> = spec.split(',').collect();
                let [seed, procs, len, aids] = parts.as_slice() else {
                    return Err(format!(
                        "--generate wants 4 comma-separated numbers, got `{spec}`"
                    ));
                };
                let bad = |field: &str| format!("bad --generate field `{field}` in `{spec}`");
                source = Some(Source::Generate {
                    seed: seed.parse().map_err(|_| bad(seed))?,
                    procs: procs.parse().map_err(|_| bad(procs))?,
                    len: len.parse().map_err(|_| bad(len))?,
                    aids: aids.parse().map_err(|_| bad(aids))?,
                });
            }
            "-h" | "--help" => return Err(String::new()),
            "-" => source = Some(Source::Stdin),
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            path => {
                if source.is_some() {
                    return Err("more than one program source given".into());
                }
                source = Some(Source::File(path.to_string()));
            }
        }
    }
    if mc.is_some() && mode != Mode::Lint {
        return Err("--mc cannot be combined with --rank/--cost".into());
    }
    Ok(Options {
        json,
        print,
        mode,
        threshold,
        mc,
        source: source.ok_or("no program source given")?,
    })
}

/// How the model-checking run relates to the static verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum McAgreement {
    /// Exhausted and consistent with the diagnostics.
    Confirmed,
    /// Budget ran out before the space was exhausted: no proof either way.
    Unverified,
    /// Exhausted and a pristine schedule exists despite an error
    /// diagnostic — an analyzer soundness bug.
    Refuted,
}

fn mc_agreement(report: &McReport, has_error: bool) -> McAgreement {
    match report.completeness {
        Completeness::BudgetExceeded(_) => McAgreement::Unverified,
        Completeness::Exhausted if has_error && report.pristine_witness.is_some() => {
            McAgreement::Refuted
        }
        Completeness::Exhausted => McAgreement::Confirmed,
    }
}

fn render_mc_json(report: &McReport, agreement: McAgreement) -> String {
    let verdict = match report.completeness {
        Completeness::Exhausted => "exhausted",
        Completeness::BudgetExceeded(_) => "budget-exceeded",
    };
    // One program per invocation, so the counts are 0/1 summing to 1 —
    // emitted as counts anyway so scripts aggregating many runs can add
    // the fields without re-deriving them from `agreement`.
    let (confirmed, unverified, refuted) = match agreement {
        McAgreement::Confirmed => (1, 0, 0),
        McAgreement::Unverified => (0, 1, 0),
        McAgreement::Refuted => (0, 0, 1),
    };
    let agreement = match agreement {
        McAgreement::Confirmed => "confirmed",
        McAgreement::Unverified => "unverified",
        McAgreement::Refuted => "refuted",
    };
    format!(
        "{{\"verdict\":\"{verdict}\",\"states\":{},\"transitions\":{},\
         \"cache_hits\":{},\"sleep_pruned\":{},\
         \"explored_fraction\":{:.4},\
         \"pristine_schedule_exists\":{},\"proves_no_pristine_schedule\":{},\
         \"agreement\":\"{agreement}\",\
         \"confirmed\":{confirmed},\"unverified\":{unverified},\"refuted\":{refuted}}}",
        report.states,
        report.transitions,
        report.cache_hits,
        report.sleep_pruned,
        report.explored_fraction(),
        report.pristine_witness.is_some(),
        report.proves_no_pristine_schedule(),
    )
}

fn render_mc_text(report: &McReport, agreement: McAgreement, has_error: bool) -> String {
    let mut out = String::new();
    let verdict = match report.completeness {
        Completeness::Exhausted => "exhausted the schedule space",
        Completeness::BudgetExceeded(_) => "budget exceeded (incomplete)",
    };
    out.push_str(&format!(
        "mc: {verdict} — {} states, {} transitions ({} cache hits, {} sleep-pruned)\n",
        report.states, report.transitions, report.cache_hits, report.sleep_pruned
    ));
    out.push_str(&match agreement {
        McAgreement::Unverified => format!(
            "mc: unverified — budget exceeded at {:.1}% of the reduced space; \
             raise --mc-states for a proof\n",
            report.explored_fraction() * 100.0
        ),
        other => render_mc_agreement_text(other, report, has_error).to_string(),
    });
    out
}

fn render_mc_agreement_text(
    agreement: McAgreement,
    report: &McReport,
    has_error: bool,
) -> &'static str {
    match agreement {
        McAgreement::Refuted => {
            "mc: REFUTED — a pristine schedule exists despite an error diagnostic \
             (analyzer soundness bug)\n"
        }
        McAgreement::Unverified => unreachable!("handled by the caller"),
        McAgreement::Confirmed if has_error => {
            "mc: confirmed — no schedule finalizes pristinely, proven over the \
             full reduced interleaving space\n"
        }
        McAgreement::Confirmed if report.pristine_witness.is_some() => {
            "mc: confirmed — a pristine schedule exists, consistent with the \
             clean verdict\n"
        }
        McAgreement::Confirmed => {
            "mc: confirmed — no pristine schedule, but no error claimed one \
             (warnings do not promise finalization)\n"
        }
    }
}

fn load(source: &Source) -> Result<Program, String> {
    let text = match source {
        Source::Generate {
            seed,
            procs,
            len,
            aids,
        } => return Ok(Program::generate(*seed, *procs, *len, *aids)),
        Source::File(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
        }
        Source::Stdin => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            buf
        }
    };
    text.parse::<Program>().map_err(|e| e.to_string())
}

/// Write to stdout, treating a broken pipe (`hope-lint ... | head`) as a
/// clean early exit rather than a panic. Other I/O errors exit 2.
fn emit(text: &str) -> Result<(), ExitCode> {
    match std::io::stdout().write_all(text.as_bytes()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == ErrorKind::BrokenPipe => Err(ExitCode::SUCCESS),
        Err(e) => {
            eprintln!("hope-lint: cannot write to stdout: {e}");
            Err(ExitCode::from(2))
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            eprintln!("hope-lint: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let program = match load(&options.source) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("hope-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    if options.print {
        if let Err(code) = emit(&program.to_string()) {
            return code;
        }
    }
    let analyzer = Analyzer::new().with_cascade_threshold(options.threshold);
    let (diagnostics, flow) = analyzer.analyze_with_flow(&program);
    let has_error = diagnostics.iter().any(|d| d.severity == Severity::Error);
    let mc_outcome = options.mc.as_ref().map(|cfg| {
        let report = check(&program, cfg);
        let agreement = mc_agreement(&report, has_error);
        (report, agreement)
    });
    let rendered = match options.mode {
        Mode::Lint if options.json => match &mc_outcome {
            Some((report, agreement)) => format!(
                "{{\"diagnostics\":{},\n \"mc\":{}}}\n",
                render_json(&diagnostics).trim_end(),
                render_mc_json(report, *agreement)
            ),
            None => render_json(&diagnostics),
        },
        Mode::Lint => match &mc_outcome {
            Some((report, agreement)) => {
                format!(
                    "{}{}",
                    render_text(&diagnostics),
                    render_mc_text(report, *agreement, has_error)
                )
            }
            None => render_text(&diagnostics),
        },
        Mode::Rank | Mode::Cost => {
            let mut costs = cost::rank_with(&program, &flow, &CostWeights::default());
            if options.mode == Mode::Cost {
                costs.sort_by_key(|c| (c.proc, c.stmt_idx, c.aid));
                if options.json {
                    cost::render_cost_json(&costs)
                } else {
                    cost::render_cost_text(&costs)
                }
            } else if options.json {
                cost::render_rank_json(&costs)
            } else {
                cost::render_rank_text(&costs)
            }
        }
    };
    if let Err(code) = emit(&rendered) {
        return code;
    }
    let refuted = matches!(mc_outcome, Some((_, McAgreement::Refuted)));
    if refuted {
        eprintln!(
            "hope-lint: model checker refutes the static verdict — \
             a pristine schedule exists despite an error diagnostic"
        );
    }
    ExitCode::from(verdict_exit(has_error, refuted))
}

/// The documented exit contract, in one testable place: an `--mc`
/// refutation (analyzer soundness bug) dominates at 2, then error
/// diagnostics at 1, then success at 0. Warnings never change the code.
fn verdict_exit(has_error: bool, refuted: bool) -> u8 {
    if refuted {
        2
    } else if has_error {
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refuted_exits_two_even_with_errors() {
        assert_eq!(verdict_exit(false, false), 0);
        assert_eq!(verdict_exit(true, false), 1);
        // Refutation dominates: the soundness bug matters more than the
        // (now untrustworthy) error verdict.
        assert_eq!(verdict_exit(true, true), 2);
        assert_eq!(verdict_exit(false, true), 2);
    }

    #[test]
    fn agreement_classification_from_real_checks() {
        let doomed: Program = "process P0:\n guess(x0)\n deny(x0)\n".parse().unwrap();
        let pristine: Program = "process P0:\n guess(x0)\n affirm(x0)\n".parse().unwrap();

        // Exhausted + error + no witness: the checker confirms the lint.
        let report = check(&doomed, &McConfig::default());
        assert!(report.completeness.is_exhausted());
        assert_eq!(mc_agreement(&report, true), McAgreement::Confirmed);

        // Exhausted + witness + clean verdict: also confirmed.
        let report = check(&pristine, &McConfig::default());
        assert!(report.pristine_witness.is_some());
        assert_eq!(mc_agreement(&report, false), McAgreement::Confirmed);

        // Exhausted + witness *against* an error claim: refuted. (No sound
        // analyzer run produces this pair — synthesized here to pin the
        // classification the exit-2 contract depends on.)
        assert_eq!(mc_agreement(&report, true), McAgreement::Refuted);

        // Budget exhaustion proves nothing either way.
        let starved = McConfig {
            max_states: 1,
            ..McConfig::default()
        };
        let report = check(&doomed, &starved);
        assert!(!report.completeness.is_exhausted());
        assert_eq!(mc_agreement(&report, true), McAgreement::Unverified);
    }
}
