//! `hope-lint`: run the static speculation-flow lints over a HOPE program.
//!
//! See [`HELP`] for the full option and exit-status contract.

use std::io::{ErrorKind, Read, Write};
use std::process::ExitCode;

use hope_analysis::cost::{self, CostWeights};
use hope_analysis::{render_json, render_text, Analyzer, Severity, DEFAULT_CASCADE_THRESHOLD};
use hope_core::program::Program;

const USAGE: &str = "usage: hope-lint [--json] [--print] [--rank | --cost] \
                     [--cascade-threshold N] <FILE | - | --generate SEED,PROCS,LEN,AIDS>";

/// The `--help` text: options plus the exit-status contract scripts rely
/// on.
const HELP: &str = "\
hope-lint — static speculation-flow analysis for HOPE programs

usage: hope-lint [OPTIONS] <FILE | - | --generate SEED,PROCS,LEN,AIDS>

Program sources (exactly one):
  FILE                     a program in Program's display syntax
  -                        read the program from stdin
  --generate S,P,L,A       analyze Program::generate(S, P, L, A) instead

Options:
  --json                   emit the output as JSON instead of text
  --print                  also print the program before the output
  --cascade-threshold N    cascade-depth warning threshold (default 3)
  --rank                   print guess sites ranked by expected rollback
                           damage (highest first) instead of diagnostics
  --cost                   like --rank, but in program order and without
                           rank numbers
  -h, --help               show this help and exit 0

Exit status:
  0  the program was analyzed and no error-severity diagnostic fired;
     warnings do not change the exit status, and neither do --rank/--cost
     (they swap the *output*, not the verdict — the lints still run)
  1  at least one error-severity diagnostic fired: no schedule lets the
     program run to full finalization
  2  usage error, unreadable input, or program parse failure
";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Lint,
    Rank,
    Cost,
}

struct Options {
    json: bool,
    print: bool,
    mode: Mode,
    threshold: usize,
    source: Source,
}

enum Source {
    File(String),
    Stdin,
    Generate {
        seed: u64,
        procs: usize,
        len: usize,
        aids: usize,
    },
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut json = false;
    let mut print = false;
    let mut mode = Mode::Lint;
    let mut threshold = DEFAULT_CASCADE_THRESHOLD;
    let mut source: Option<Source> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--print" => print = true,
            "--rank" | "--cost" => {
                let wanted = if arg == "--rank" {
                    Mode::Rank
                } else {
                    Mode::Cost
                };
                if mode != Mode::Lint && mode != wanted {
                    return Err("--rank and --cost cannot be combined".into());
                }
                mode = wanted;
            }
            "--cascade-threshold" => {
                let value = it.next().ok_or("--cascade-threshold needs a value")?;
                threshold = value
                    .parse()
                    .map_err(|_| format!("bad --cascade-threshold value `{value}`"))?;
            }
            "--generate" => {
                let spec = it.next().ok_or("--generate needs SEED,PROCS,LEN,AIDS")?;
                let parts: Vec<&str> = spec.split(',').collect();
                let [seed, procs, len, aids] = parts.as_slice() else {
                    return Err(format!(
                        "--generate wants 4 comma-separated numbers, got `{spec}`"
                    ));
                };
                let bad = |field: &str| format!("bad --generate field `{field}` in `{spec}`");
                source = Some(Source::Generate {
                    seed: seed.parse().map_err(|_| bad(seed))?,
                    procs: procs.parse().map_err(|_| bad(procs))?,
                    len: len.parse().map_err(|_| bad(len))?,
                    aids: aids.parse().map_err(|_| bad(aids))?,
                });
            }
            "-h" | "--help" => return Err(String::new()),
            "-" => source = Some(Source::Stdin),
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            path => {
                if source.is_some() {
                    return Err("more than one program source given".into());
                }
                source = Some(Source::File(path.to_string()));
            }
        }
    }
    Ok(Options {
        json,
        print,
        mode,
        threshold,
        source: source.ok_or("no program source given")?,
    })
}

fn load(source: &Source) -> Result<Program, String> {
    let text = match source {
        Source::Generate {
            seed,
            procs,
            len,
            aids,
        } => return Ok(Program::generate(*seed, *procs, *len, *aids)),
        Source::File(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
        }
        Source::Stdin => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            buf
        }
    };
    text.parse::<Program>().map_err(|e| e.to_string())
}

/// Write to stdout, treating a broken pipe (`hope-lint ... | head`) as a
/// clean early exit rather than a panic. Other I/O errors exit 2.
fn emit(text: &str) -> Result<(), ExitCode> {
    match std::io::stdout().write_all(text.as_bytes()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == ErrorKind::BrokenPipe => Err(ExitCode::SUCCESS),
        Err(e) => {
            eprintln!("hope-lint: cannot write to stdout: {e}");
            Err(ExitCode::from(2))
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            eprintln!("hope-lint: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let program = match load(&options.source) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("hope-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    if options.print {
        if let Err(code) = emit(&program.to_string()) {
            return code;
        }
    }
    let analyzer = Analyzer::new().with_cascade_threshold(options.threshold);
    let (diagnostics, flow) = analyzer.analyze_with_flow(&program);
    let rendered = match options.mode {
        Mode::Lint if options.json => render_json(&diagnostics),
        Mode::Lint => render_text(&diagnostics),
        Mode::Rank | Mode::Cost => {
            let mut costs = cost::rank_with(&program, &flow, &CostWeights::default());
            if options.mode == Mode::Cost {
                costs.sort_by_key(|c| (c.proc, c.stmt_idx, c.aid));
                if options.json {
                    cost::render_cost_json(&costs)
                } else {
                    cost::render_cost_text(&costs)
                }
            } else if options.json {
                cost::render_rank_json(&costs)
            } else {
                cost::render_rank_text(&costs)
            }
        }
    };
    if let Err(code) = emit(&rendered) {
        return code;
    }
    if diagnostics.iter().any(|d| d.severity == Severity::Error) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
