//! The dynamic side of the analyzer: a vector-clock race detector that
//! consumes the runtime's [`RuntimeObserver`] stream.
//!
//! The static lints predict what *may* go wrong; this module watches what
//! *does*. [`RaceDetector`] maintains one vector clock per process,
//! advanced on every observed action, snapshotted onto messages at `send`
//! and joined at `recv` — so two events are causally ordered exactly when
//! their clocks are. A rollback also joins the victim's clock with the
//! decider's: the paper's Equation 24 (a re-executed guess returns
//! `False`) is a *causal* consequence of the deny, not a race.
//!
//! Three anomaly shapes are reported:
//!
//! * [`RaceKind::DecidedAidReuse`] — a decider was skipped because its AID
//!   was already consumed (§5.2's one-shot rule). Every skip is reported:
//!   the skipped primitive's effect is silently lost.
//! * [`RaceKind::SendAfterDeny`] — a message was condemned as a ghost (§7):
//!   its tag carried an AID that was denied before delivery.
//! * [`RaceKind::GuessAfterDecide`] — a `guess` returned `False` because of
//!   a deny that is *not* causally before the guess: the guesser observes
//!   the decision's outcome with no communication explaining it.
//!
//! [`covered_by`] is the static↔dynamic bridge: it maps each race kind to
//! the static lints that predict it, matched by AID. The agreement
//! test-suite checks that on exhaustive program spaces every dynamic
//! report is covered by a static warning.

use std::collections::HashMap;

use hope_core::{Action, AidId, Effect, ProcessId, RuntimeObserver};

use crate::diagnostics::{Diagnostic, Lint};

/// A vector clock over dense process indices, zero-padded on the right so
/// processes may appear lazily.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct VectorClock(Vec<u64>);

impl VectorClock {
    fn get(&self, k: usize) -> u64 {
        self.0.get(k).copied().unwrap_or(0)
    }

    fn tick(&mut self, k: usize) {
        if self.0.len() <= k {
            self.0.resize(k + 1, 0);
        }
        self.0[k] += 1;
    }

    fn join(&mut self, other: &VectorClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (k, v) in other.0.iter().enumerate() {
            self.0[k] = self.0[k].max(*v);
        }
    }

    /// `self ≤ other` componentwise: the event stamped `self` happened
    /// before (or is) the event stamped `other`.
    fn leq(&self, other: &VectorClock) -> bool {
        self.0.iter().enumerate().all(|(k, &v)| v <= other.get(k))
    }
}

/// The anomaly shapes the detector reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RaceKind {
    /// A decider executed on an already-consumed AID and was skipped.
    DecidedAidReuse,
    /// A sent message was condemned as a ghost by a deny.
    SendAfterDeny,
    /// A guess returned `False` due to a causally-unordered deny.
    GuessAfterDecide,
}

impl RaceKind {
    /// The race kind's stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            RaceKind::DecidedAidReuse => "decided-aid-reuse",
            RaceKind::SendAfterDeny => "send-after-deny",
            RaceKind::GuessAfterDecide => "guess-after-decide",
        }
    }
}

/// One anomaly observed at runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// Which anomaly shape.
    pub kind: RaceKind,
    /// The process the anomaly is charged to: the skipper for
    /// [`RaceKind::DecidedAidReuse`], the *sender* for
    /// [`RaceKind::SendAfterDeny`], the guesser for
    /// [`RaceKind::GuessAfterDecide`].
    pub process: ProcessId,
    /// The AID the anomaly is about.
    pub aid: AidId,
    /// Human-readable description.
    pub detail: String,
}

#[derive(Debug, Clone)]
struct DecideRecord {
    by: ProcessId,
    clock: VectorClock,
    denied: bool,
}

/// A [`RuntimeObserver`] that detects the three race shapes online.
///
/// Feed it to [`Machine::run_observed`](hope_core::machine::Machine) or to
/// `hope-runtime`'s `Simulation::set_observer`, then inspect
/// [`RaceDetector::races`]. Process ids are used as dense indices (both
/// embeddings assign them densely from zero).
#[derive(Debug, Default)]
pub struct RaceDetector {
    clocks: Vec<VectorClock>,
    msg_clocks: HashMap<u64, VectorClock>,
    decides: HashMap<AidId, DecideRecord>,
    races: Vec<RaceReport>,
}

impl RaceDetector {
    /// A fresh detector with no observed history.
    pub fn new() -> Self {
        RaceDetector::default()
    }

    /// Every race observed so far, in observation order.
    pub fn races(&self) -> &[RaceReport] {
        &self.races
    }

    /// Consume the detector, returning the observed races.
    pub fn into_races(self) -> Vec<RaceReport> {
        self.races
    }

    fn clock_mut(&mut self, p: usize) -> &mut VectorClock {
        if self.clocks.len() <= p {
            self.clocks.resize(p + 1, VectorClock::default());
        }
        &mut self.clocks[p]
    }
}

impl RuntimeObserver for RaceDetector {
    fn observe(&mut self, process: ProcessId, action: &Action, effects: &[Effect]) {
        let p = process.0 as usize;
        self.clock_mut(p).tick(p);
        match *action {
            Action::Guess { aid, value: false } => {
                if let Some(rec) = self.decides.get(&aid) {
                    if rec.denied && rec.by != process && !rec.clock.leq(&self.clocks[p]) {
                        self.races.push(RaceReport {
                            kind: RaceKind::GuessAfterDecide,
                            process,
                            aid,
                            detail: format!(
                                "{process}'s guess({aid}) returned false because of \
                                 {}'s causally-unordered deny",
                                rec.by
                            ),
                        });
                    }
                }
            }
            Action::SkippedDecide { aid, kind } => {
                self.races.push(RaceReport {
                    kind: RaceKind::DecidedAidReuse,
                    process,
                    aid,
                    detail: format!(
                        "{process}'s {}({aid}) was skipped: {aid} was already consumed",
                        kind.name()
                    ),
                });
            }
            Action::Send { msg, .. } => {
                let snapshot = self.clocks[p].clone();
                self.msg_clocks.insert(msg, snapshot);
            }
            Action::Recv { msg, .. } => {
                if let Some(sent) = self.msg_clocks.get(&msg).cloned() {
                    self.clock_mut(p).join(&sent);
                }
            }
            Action::GhostDropped { from, denied, .. } => {
                self.races.push(RaceReport {
                    kind: RaceKind::SendAfterDeny,
                    process: from,
                    aid: denied,
                    detail: format!(
                        "{from}'s message to {process} was condemned as a ghost: \
                         its tag carried the denied {denied}"
                    ),
                });
            }
            _ => {}
        }
        for effect in effects {
            match effect {
                Effect::AidAffirmed { aid } | Effect::AidDenied { aid } => {
                    let record = DecideRecord {
                        by: process,
                        clock: self.clocks[p].clone(),
                        denied: matches!(effect, Effect::AidDenied { .. }),
                    };
                    self.decides.entry(*aid).or_insert(record);
                }
                Effect::RolledBack {
                    process: victim, ..
                } => {
                    // Rollback is a causal consequence of the deny that
                    // triggered it: order the victim after the decider so
                    // Equation 24 re-executions are not reported as races.
                    let decider = self.clocks[p].clone();
                    self.clock_mut(victim.0 as usize).join(&decider);
                }
                _ => {}
            }
        }
    }
}

/// Does a static diagnostic predict this dynamic race?
///
/// The mapping, matched on the AID variable (the detector's [`AidId`]
/// indices coincide with the program's `AidVar`s in both embeddings):
///
/// * [`RaceKind::DecidedAidReuse`] ← `consumed-reassertion`,
///   `doomed-free-of`, or `dependent-deny` (a definite self-deny re-runs
///   the process past its own decider, consuming the AID twice);
/// * [`RaceKind::SendAfterDeny`] ← `ghost-risk`;
/// * [`RaceKind::GuessAfterDecide`] ← `guess-decide-race`.
pub fn covered_by(race: &RaceReport, diagnostics: &[Diagnostic]) -> bool {
    let aid = race.aid.index() as usize;
    let lints: &[Lint] = match race.kind {
        RaceKind::DecidedAidReuse => &[
            Lint::ConsumedReassertion,
            Lint::DoomedFreeOf,
            Lint::DependentDeny,
        ],
        RaceKind::SendAfterDeny => &[Lint::GhostRisk],
        RaceKind::GuessAfterDecide => &[Lint::GuessDecideRace],
    };
    diagnostics
        .iter()
        .any(|d| d.aid == Some(aid) && lints.contains(&d.lint))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hope_core::{Checkpoint, DecideKind, IntervalId};

    fn aid(v: u64) -> AidId {
        AidId::from_index(v)
    }

    #[test]
    fn skipped_decider_is_always_reported() {
        let mut det = RaceDetector::new();
        det.observe(
            ProcessId(1),
            &Action::SkippedDecide {
                aid: aid(0),
                kind: DecideKind::Deny,
            },
            &[],
        );
        assert_eq!(det.races().len(), 1);
        let race = &det.races()[0];
        assert_eq!(race.kind, RaceKind::DecidedAidReuse);
        assert_eq!(race.process, ProcessId(1));
        assert_eq!(race.aid, aid(0));

        let covering = Diagnostic::warning(Lint::DependentDeny, 1, 0, "x").with_aid(0);
        let unrelated = Diagnostic::warning(Lint::GhostRisk, 1, 0, "x").with_aid(0);
        let wrong_aid = Diagnostic::warning(Lint::DependentDeny, 1, 0, "x").with_aid(3);
        assert!(covered_by(race, &[covering]));
        assert!(!covered_by(race, &[unrelated, wrong_aid]));
    }

    #[test]
    fn ghost_drop_is_charged_to_the_sender() {
        let mut det = RaceDetector::new();
        det.observe(
            ProcessId(1),
            &Action::GhostDropped {
                msg: 7,
                from: ProcessId(0),
                denied: aid(2),
            },
            &[],
        );
        let race = &det.races()[0];
        assert_eq!(race.kind, RaceKind::SendAfterDeny);
        assert_eq!(race.process, ProcessId(0));
        assert_eq!(race.aid, aid(2));
        let covering = Diagnostic::warning(Lint::GhostRisk, 0, 1, "x").with_aid(2);
        assert!(covered_by(race, &[covering]));
    }

    #[test]
    fn unordered_deny_races_the_guess_but_message_delivery_orders_it() {
        // P1 denies x0, then P0 guesses it false with no communication:
        // race.
        let mut det = RaceDetector::new();
        det.observe(
            ProcessId(1),
            &Action::Deny {
                aid: aid(0),
                speculative: false,
            },
            &[Effect::AidDenied { aid: aid(0) }],
        );
        det.observe(
            ProcessId(0),
            &Action::Guess {
                aid: aid(0),
                value: false,
            },
            &[],
        );
        assert_eq!(det.races().len(), 1);
        assert_eq!(det.races()[0].kind, RaceKind::GuessAfterDecide);

        // Same story, but the deny reaches P0 through a message before the
        // guess: causally ordered, no race.
        let mut det = RaceDetector::new();
        det.observe(
            ProcessId(1),
            &Action::Deny {
                aid: aid(0),
                speculative: false,
            },
            &[Effect::AidDenied { aid: aid(0) }],
        );
        det.observe(
            ProcessId(1),
            &Action::Send {
                to: ProcessId(0),
                msg: 0,
            },
            &[],
        );
        det.observe(
            ProcessId(0),
            &Action::Recv {
                msg: 0,
                from: ProcessId(1),
                speculative: false,
            },
            &[],
        );
        det.observe(
            ProcessId(0),
            &Action::Guess {
                aid: aid(0),
                value: false,
            },
            &[],
        );
        assert!(det.races().is_empty());
    }

    #[test]
    fn rollback_orders_the_reexecuted_guess_after_the_deny() {
        let mut det = RaceDetector::new();
        det.observe(
            ProcessId(0),
            &Action::Guess {
                aid: aid(0),
                value: true,
            },
            &[],
        );
        // P1's deny rolls P0 back; the rollback effect carries the causal
        // link.
        det.observe(
            ProcessId(1),
            &Action::Deny {
                aid: aid(0),
                speculative: false,
            },
            &[
                Effect::AidDenied { aid: aid(0) },
                Effect::RolledBack {
                    process: ProcessId(0),
                    intervals: vec![IntervalId::from_index(0)],
                    checkpoint: Checkpoint(0),
                },
            ],
        );
        det.observe(
            ProcessId(0),
            &Action::Guess {
                aid: aid(0),
                value: false,
            },
            &[],
        );
        assert!(det.races().is_empty(), "{:?}", det.races());
    }

    #[test]
    fn affirms_and_program_order_do_not_race() {
        // A guess returning false after a *same-process* deny is program
        // ordered; after an affirm it is not a guess/decide race at all.
        let mut det = RaceDetector::new();
        det.observe(
            ProcessId(0),
            &Action::Deny {
                aid: aid(0),
                speculative: false,
            },
            &[Effect::AidDenied { aid: aid(0) }],
        );
        det.observe(
            ProcessId(0),
            &Action::Guess {
                aid: aid(0),
                value: false,
            },
            &[],
        );
        det.observe(
            ProcessId(1),
            &Action::Affirm {
                aid: aid(1),
                speculative: false,
            },
            &[Effect::AidAffirmed { aid: aid(1) }],
        );
        det.observe(
            ProcessId(0),
            &Action::Guess {
                aid: aid(1),
                value: false,
            },
            &[],
        );
        assert!(det.races().is_empty(), "{:?}", det.races());
    }
}
