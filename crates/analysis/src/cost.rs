//! The cascade cost model: an expected-rollback-damage score per `guess`
//! site.
//!
//! The flat [`cascade_depth`](crate::lints::cascade_depth) lint counts how
//! many *processes* a deny may roll back. That treats a process that
//! executes one dependent statement the same as one that re-executes fifty
//! and re-sends a dozen tagged messages. The cost model weighs the damage a
//! deny of each guessed AID would actually do, interprocedurally, from the
//! may-IDO fixpoint ([`Flow`]):
//!
//! * **re-execution** — every statement whose post-state may depend on the
//!   AID runs inside the speculation and is discarded and re-run on
//!   rollback (`Del(H_P, A)`, §5.6);
//! * **checkpoint** — the number of statements a dependent process executes
//!   *before* its speculation begins approximates the state the runtime
//!   must snapshot and restore (`A.PS`, Equation 1);
//! * **messages** — every `send` whose tag may carry the AID becomes a
//!   ghost on deny and must be re-sent after rollback (§7).
//!
//! The damage of an AID is the weighted sum of those three components over
//! every may-dependent process; every `guess` site of the AID is charged
//! the full damage (any one of them opens the exposure). Rankings are
//! deterministic: sorted by damage descending, ties broken by
//! `(process, statement, AID)` ascending.

use hope_core::program::{Program, Stmt};

use crate::flow::Flow;

/// Relative weights of the three damage components.
///
/// The defaults were calibrated against measured rollback work on the
/// bench-suite chain cascades (see `EXPERIMENTS.md`): re-execution is the
/// unit, a checkpointed statement costs about the same again to snapshot
/// and restore, and a ghosted message costs a few re-executions' worth of
/// delivery, filtering, and re-send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostWeights {
    /// Cost per statement executed before a dependent process's speculation
    /// begins (checkpoint size proxy).
    pub checkpoint: u64,
    /// Cost per statement that may need re-execution after a rollback.
    pub reexec: u64,
    /// Cost per message whose tag may carry the AID (ghost + re-send).
    pub message: u64,
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights {
            checkpoint: 1,
            reexec: 1,
            message: 3,
        }
    }
}

/// The expected-rollback-damage score of one `guess` site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeculationCost {
    /// The guessing process.
    pub proc: usize,
    /// The `guess` statement's index.
    pub stmt_idx: usize,
    /// The guessed AID variable.
    pub aid: usize,
    /// Unweighted checkpoint component (statements executed before the
    /// speculation begins, summed over dependent processes).
    pub checkpoint: u64,
    /// Unweighted re-execution component (statements that may re-run).
    pub reexec: u64,
    /// Unweighted message component (sends whose tag may carry the AID).
    pub messages: u64,
    /// The weighted total damage.
    pub damage: u64,
}

/// Rank every `guess` site of `program` by expected rollback damage under
/// the default [`CostWeights`].
pub fn rank(program: &Program) -> Vec<SpeculationCost> {
    let flow = crate::flow::analyze(program);
    rank_with(program, &flow, &CostWeights::default())
}

/// Rank every `guess` site of `program` by expected rollback damage,
/// reusing an already-computed [`Flow`].
///
/// The result is sorted by [`SpeculationCost::damage`] descending, ties
/// broken by `(proc, stmt_idx, aid)` ascending — deterministic for a fixed
/// program and weights.
pub fn rank_with(program: &Program, flow: &Flow, weights: &CostWeights) -> Vec<SpeculationCost> {
    let procs = program.process_count();
    let mut out = Vec::new();
    for (x, sites) in flow.guess_sites.iter().enumerate() {
        if sites.is_empty() {
            continue;
        }
        let mut checkpoint = 0u64;
        let mut reexec = 0u64;
        let mut messages = 0u64;
        for q in 0..procs {
            // Statement j runs inside the speculation on x when its
            // post-state may depend on x.
            let dependent: Vec<usize> = (0..program.code[q].len())
                .filter(|&j| flow.may_ido[q][j + 1].contains(&x))
                .collect();
            let Some(&first) = dependent.first() else {
                continue;
            };
            checkpoint += first as u64;
            reexec += dependent.len() as u64;
            messages += program.code[q]
                .iter()
                .enumerate()
                .filter(|&(j, s)| {
                    matches!(s, Stmt::Send { to } if *to < procs) && flow.may_ido[q][j].contains(&x)
                })
                .count() as u64;
        }
        let damage =
            weights.checkpoint * checkpoint + weights.reexec * reexec + weights.message * messages;
        for &(p, i) in sites {
            out.push(SpeculationCost {
                proc: p,
                stmt_idx: i,
                aid: x,
                checkpoint,
                reexec,
                messages,
                damage,
            });
        }
    }
    out.sort_by(|a, b| {
        b.damage
            .cmp(&a.damage)
            .then_with(|| (a.proc, a.stmt_idx, a.aid).cmp(&(b.proc, b.stmt_idx, b.aid)))
    });
    out
}

/// A per-site damage prior in the form the runtime's optimism governor
/// consumes (`hope_runtime::GovernorConfig::with_priors`): the process's
/// index doubles as its runtime `ProcessId` when processes are spawned in
/// program order, and the guess statement's index is the **site** id to
/// pass to `Ctx::guess_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SitePrior {
    /// The guessing process's index (= runtime `ProcessId` under
    /// program-order spawning).
    pub process: u32,
    /// The `guess` statement's index within that process (the site id).
    pub site: u32,
    /// The statically ranked damage score ([`SpeculationCost::damage`]).
    pub damage: u64,
}

/// The static damage ranks of `program` as runtime-consumable priors, one
/// per `guess` site, under the default [`CostWeights`]. A site guessing
/// several AIDs keeps the largest damage (any of the assumptions opens the
/// exposure). Sorted by `(process, site)` ascending — deterministic for a
/// fixed program.
pub fn site_priors(program: &Program) -> Vec<SitePrior> {
    let mut out: Vec<SitePrior> = Vec::new();
    for c in rank(program) {
        let (process, site) = (c.proc as u32, c.stmt_idx as u32);
        match out
            .iter_mut()
            .find(|p| p.process == process && p.site == site)
        {
            Some(p) => p.damage = p.damage.max(c.damage),
            None => out.push(SitePrior {
                process,
                site,
                damage: c.damage,
            }),
        }
    }
    out.sort_by_key(|p| (p.process, p.site));
    out
}

/// Render a ranking as one line per speculation plus a summary line.
pub fn render_rank_text(costs: &[SpeculationCost]) -> String {
    let mut out = String::new();
    for (n, c) in costs.iter().enumerate() {
        out.push_str(&format!(
            "#{} P{}:{} guess(x{}): damage {} (reexec {}, checkpoint {}, messages {})\n",
            n + 1,
            c.proc,
            c.stmt_idx,
            c.aid,
            c.damage,
            c.reexec,
            c.checkpoint,
            c.messages,
        ));
    }
    out.push_str(&format!(
        "{} speculation{} ranked\n",
        costs.len(),
        if costs.len() == 1 { "" } else { "s" },
    ));
    out
}

/// Render costs one line per site without rank numbers (for program-order
/// listings), plus a summary line.
pub fn render_cost_text(costs: &[SpeculationCost]) -> String {
    let mut out = String::new();
    for c in costs {
        out.push_str(&format!(
            "P{}:{} guess(x{}): damage {} (reexec {}, checkpoint {}, messages {})\n",
            c.proc, c.stmt_idx, c.aid, c.damage, c.reexec, c.checkpoint, c.messages,
        ));
    }
    out.push_str(&format!(
        "{} speculation{} costed\n",
        costs.len(),
        if costs.len() == 1 { "" } else { "s" },
    ));
    out
}

/// Render costs as a JSON array with keys `proc`, `stmt`, `aid`, `damage`,
/// `reexec`, `checkpoint`, and `messages` (no `rank` — the order is the
/// caller's). Hand-rolled — the analyzer has no serde dependency.
pub fn render_cost_json(costs: &[SpeculationCost]) -> String {
    let mut out = String::from("[");
    for (n, c) in costs.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"proc\":{},\"stmt\":{},\"aid\":{},\"damage\":{},\"reexec\":{},\
             \"checkpoint\":{},\"messages\":{}}}",
            c.proc, c.stmt_idx, c.aid, c.damage, c.reexec, c.checkpoint, c.messages,
        ));
    }
    if !costs.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Render a ranking as a JSON array of objects with keys `rank`, `proc`,
/// `stmt`, `aid`, `damage`, `reexec`, `checkpoint`, and `messages`.
/// Hand-rolled — the analyzer has no serde dependency.
pub fn render_rank_json(costs: &[SpeculationCost]) -> String {
    let mut out = String::from("[");
    for (n, c) in costs.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rank\":{},\"proc\":{},\"stmt\":{},\"aid\":{},\"damage\":{},\"reexec\":{},\
             \"checkpoint\":{},\"messages\":{}}}",
            n + 1,
            c.proc,
            c.stmt_idx,
            c.aid,
            c.damage,
            c.reexec,
            c.checkpoint,
            c.messages,
        ));
    }
    if !costs.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn damage_counts_all_three_components() {
        // P0 guesses, runs one dependent compute, sends a tagged message,
        // then affirms; P1 computes first (checkpoint 1), receives the tag,
        // and runs one more dependent statement.
        let program = Program::new(vec![
            vec![
                Stmt::Guess(0),
                Stmt::Compute,
                Stmt::Send { to: 1 },
                Stmt::Affirm(0),
            ],
            vec![Stmt::Compute, Stmt::Recv, Stmt::Compute],
        ]);
        let costs = rank(&program);
        assert_eq!(costs.len(), 1);
        let c = costs[0];
        assert_eq!((c.proc, c.stmt_idx, c.aid), (0, 0, 0));
        // P0: statements 0..=2 dependent (guess, compute, send) → reexec 3,
        // checkpoint 0. P1: statements 1..=2 dependent (recv, compute) →
        // reexec 2, checkpoint 1. One tagged send.
        assert_eq!(c.reexec, 5);
        assert_eq!(c.checkpoint, 1);
        assert_eq!(c.messages, 1);
        assert_eq!(c.damage, c.checkpoint + c.reexec + 3 * c.messages);
    }

    #[test]
    fn ranking_is_deterministic_and_breaks_ties_by_site() {
        // Two AIDs with identical shapes: equal damage, ordered by site.
        let program = Program::new(vec![
            vec![Stmt::Guess(0), Stmt::Affirm(0)],
            vec![Stmt::Guess(1), Stmt::Affirm(1)],
        ]);
        let a = rank(&program);
        let b = rank(&program);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].damage, a[1].damage);
        assert_eq!((a[0].proc, a[0].aid), (0, 0));
        assert_eq!((a[1].proc, a[1].aid), (1, 1));
    }

    #[test]
    fn wider_cascades_cost_more() {
        let narrow = Program::new(vec![
            vec![Stmt::Guess(0), Stmt::Send { to: 1 }, Stmt::Affirm(0)],
            vec![Stmt::Recv],
        ]);
        let wide = Program::new(vec![
            vec![
                Stmt::Guess(0),
                Stmt::Send { to: 1 },
                Stmt::Send { to: 2 },
                Stmt::Affirm(0),
            ],
            vec![Stmt::Recv, Stmt::Compute],
            vec![Stmt::Recv, Stmt::Compute],
        ]);
        assert!(rank(&wide)[0].damage > rank(&narrow)[0].damage);
    }

    #[test]
    fn site_priors_key_by_process_and_site() {
        let program = Program::new(vec![
            vec![Stmt::Guess(0), Stmt::Compute, Stmt::Affirm(0)],
            vec![Stmt::Guess(1), Stmt::Affirm(1)],
        ]);
        let priors = site_priors(&program);
        assert_eq!(priors.len(), 2);
        assert_eq!((priors[0].process, priors[0].site), (0, 0));
        assert_eq!((priors[1].process, priors[1].site), (1, 0));
        // The priors carry the same damage numbers the ranking reports.
        for c in rank(&program) {
            let p = priors
                .iter()
                .find(|p| (p.process, p.site) == (c.proc as u32, c.stmt_idx as u32))
                .unwrap();
            assert_eq!(p.damage, c.damage);
        }
        assert_eq!(
            site_priors(&Program::new(vec![vec![Stmt::Compute]])),
            vec![]
        );
    }

    #[test]
    fn renderers_agree_on_order_and_handle_empty() {
        let program = Program::new(vec![
            vec![Stmt::Guess(0), Stmt::Affirm(0)],
            vec![Stmt::Guess(1), Stmt::Affirm(1)],
        ]);
        let costs = rank(&program);
        let text = render_rank_text(&costs);
        assert!(text.starts_with("#1 P0:0 guess(x0):"), "{text}");
        assert!(text.ends_with("2 speculations ranked\n"), "{text}");
        let json = render_rank_json(&costs);
        assert!(json.starts_with("[\n  {\"rank\":1,\"proc\":0,"), "{json}");

        assert_eq!(render_rank_text(&[]), "0 speculations ranked\n");
        assert_eq!(render_rank_json(&[]), "[]\n");
    }

    #[test]
    fn cost_renderers_omit_rank_numbers() {
        let program = Program::new(vec![vec![Stmt::Guess(0), Stmt::Affirm(0)]]);
        let costs = rank(&program);
        let text = render_cost_text(&costs);
        assert!(text.starts_with("P0:0 guess(x0): damage "), "{text}");
        assert!(text.ends_with("1 speculation costed\n"), "{text}");
        let json = render_cost_json(&costs);
        assert!(json.starts_with("[\n  {\"proc\":0,\"stmt\":0,"), "{json}");
        assert!(!json.contains("\"rank\""), "{json}");
        assert_eq!(render_cost_text(&[]), "0 speculations costed\n");
        assert_eq!(render_cost_json(&[]), "[]\n");
    }
}
