//! # hope-analysis — static speculation-flow analysis for HOPE programs
//!
//! The HOPE semantics (Cowan & Lutfiyya, PODC 1995) makes several misuses
//! of the optimism primitives *dynamically* fatal: a re-used assumption
//! identifier is skipped (§5.2's one-shot rule), a `free_of` of an AID the
//! asserter depends on denies it and rolls the asserter back (Equation 19),
//! and a guessed AID nobody ever decides pins its guesser speculative
//! forever. This crate finds those shapes **before** running the program,
//! by abstract interpretation over [`hope_core::program::Program`]:
//!
//! * [`flow`] computes, per process and program point, an over-approximate
//!   *may*-IDO set — the AIDs the process's state may depend on — and
//!   propagates dependence across `send`/`recv` edges through message tags
//!   to a joint fixpoint (§3's implicit guess, statically).
//! * [`lints`] interprets the flow through nine checks; every
//!   [`Severity::Error`] finding carries a machine-checked guarantee: *no*
//!   schedule lets the program run to full finalization (see the agreement
//!   test-suite in `tests/`).
//! * [`cost`] ranks every `guess` site by expected rollback damage
//!   (re-execution, checkpoint, and ghost-message components weighed over
//!   the may-IDO fixpoint).
//! * [`diagnostics`] renders findings as one-line text or JSON.
//! * [`dynamic`] is the runtime side: a [`hope_core::RuntimeObserver`]
//!   race detector whose reports the agreement suite checks against the
//!   static warnings.
//!
//! The [`Analyzer`] bundles the passes; it also implements
//! [`hope_core::machine::ProgramValidator`], so statically-doomed programs
//! can be rejected at machine construction:
//!
//! ```
//! use hope_analysis::Analyzer;
//! use hope_core::machine::Machine;
//! use hope_core::program::{Program, Stmt};
//!
//! // guess(x0) … free_of(x0): Equation 19 dooms this on every schedule.
//! let doomed = Program::new(vec![vec![Stmt::Guess(0), Stmt::FreeOf(0)]]);
//! let err = Machine::new_validated(doomed, &Analyzer::default()).unwrap_err();
//! assert!(matches!(err, hope_core::Error::ProgramRejected { .. }));
//!
//! let fine = Program::new(vec![
//!     vec![Stmt::Guess(0), Stmt::Compute],
//!     vec![Stmt::Affirm(0)],
//! ]);
//! let mut machine = Machine::new_validated(fine, &Analyzer::default()).unwrap();
//! assert!(machine.run(100).completed);
//! ```
//!
//! The `hope-lint` binary exposes the same analysis on the command line.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
pub mod diagnostics;
pub mod dynamic;
pub mod flow;
pub mod lints;

pub use cost::{rank, rank_with, CostWeights, SpeculationCost};
pub use diagnostics::{render_json, render_text, Diagnostic, Lint, Severity};
pub use dynamic::{covered_by, RaceDetector, RaceKind, RaceReport};
pub use flow::{analyze as analyze_flow, DeciderKind, Flow};

use hope_core::machine::ProgramValidator;
use hope_core::program::Program;

/// Default [`Analyzer::cascade_threshold`]: warn when a single deny may
/// roll back three or more processes.
pub const DEFAULT_CASCADE_THRESHOLD: usize = 3;

/// The bundled static analyzer: runs the flow pass and every lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Analyzer {
    /// Minimum may-depend process count at which
    /// [`Lint::CascadeDepth`] warns.
    pub cascade_threshold: usize,
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer {
            cascade_threshold: DEFAULT_CASCADE_THRESHOLD,
        }
    }
}

impl Analyzer {
    /// An analyzer with the default configuration.
    pub fn new() -> Self {
        Analyzer::default()
    }

    /// Set the [`Lint::CascadeDepth`] warning threshold.
    pub fn with_cascade_threshold(mut self, threshold: usize) -> Self {
        self.cascade_threshold = threshold;
        self
    }

    /// Run every lint over `program`.
    ///
    /// Findings are ordered by site (process, then statement index;
    /// program-level findings first within a process), then by lint, so
    /// output is deterministic and diff-friendly.
    pub fn analyze(&self, program: &Program) -> Vec<Diagnostic> {
        self.analyze_with_flow(program).0
    }

    /// Like [`Analyzer::analyze`], but also returns the flow results (for
    /// tooling that wants the may-IDO sets themselves).
    pub fn analyze_with_flow(&self, program: &Program) -> (Vec<Diagnostic>, Flow) {
        let flow = flow::analyze(program);
        let mut out = Vec::new();
        out.extend(lints::invalid_target(program, &flow));
        out.extend(lints::leaked_speculation(program, &flow));
        out.extend(lints::doomed_free_of(program, &flow));
        out.extend(lints::consumed_reassertion(program, &flow));
        out.extend(lints::unreachable_recv(program, &flow));
        out.extend(lints::cascade_depth(program, &flow, self.cascade_threshold));
        out.extend(lints::dependent_deny(program, &flow));
        out.extend(lints::ghost_risk(program, &flow));
        out.extend(lints::guess_decide_race(program, &flow));
        out.sort_by_key(|d| (d.proc, d.stmt_idx, d.lint));
        (out, flow)
    }

    /// The error-severity subset of [`Analyzer::analyze`].
    pub fn errors(&self, program: &Program) -> Vec<Diagnostic> {
        self.analyze(program)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect()
    }
}

impl ProgramValidator for Analyzer {
    /// Reject `program` when any error-severity lint fires; warnings do not
    /// block execution.
    fn validate(&self, program: &Program) -> Result<(), Vec<String>> {
        let errors = self.errors(program);
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors.into_iter().map(|d| d.to_string()).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hope_core::program::Stmt;

    #[test]
    fn analyzer_orders_findings_by_site() {
        let program = Program::new(vec![
            vec![Stmt::Guess(0), Stmt::FreeOf(0)],
            vec![Stmt::Recv, Stmt::Guess(1)],
        ]);
        let ds = Analyzer::new().analyze(&program);
        let sites: Vec<(Option<usize>, Option<usize>)> =
            ds.iter().map(|d| (d.proc, d.stmt_idx)).collect();
        let mut sorted = sites.clone();
        sorted.sort();
        assert_eq!(sites, sorted);
        assert!(ds.iter().any(|d| d.lint == Lint::DoomedFreeOf));
        assert!(ds.iter().any(|d| d.lint == Lint::UnreachableRecv));
        assert!(ds.iter().any(|d| d.lint == Lint::LeakedSpeculation));
    }

    #[test]
    fn validator_passes_warnings_blocks_errors() {
        // Self-send is only a warning: must validate.
        let warn_only = Program::new(vec![vec![Stmt::Send { to: 0 }, Stmt::Recv]]);
        assert!(Analyzer::new().validate(&warn_only).is_ok());

        let doomed = Program::new(vec![vec![Stmt::Guess(0)]]);
        let reasons = Analyzer::new().validate(&doomed).unwrap_err();
        assert_eq!(reasons.len(), 1);
        assert!(
            reasons[0].starts_with("error[leaked-speculation] P0:0:"),
            "{}",
            reasons[0]
        );
    }

    #[test]
    fn threshold_is_configurable() {
        let program = Program::new(vec![
            vec![Stmt::Guess(0), Stmt::Send { to: 1 }, Stmt::Affirm(0)],
            vec![Stmt::Recv],
        ]);
        assert!(Analyzer::new().analyze(&program).is_empty());
        let strict = Analyzer::new().with_cascade_threshold(2);
        let ds = strict.analyze(&program);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].lint, Lint::CascadeDepth);
        assert_eq!(ds[0].severity, Severity::Warning);
    }
}
