//! The diagnostics vocabulary: lints, severities, and renderers.

use std::fmt;

/// The static checks `hope-analysis` performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Lint {
    /// An AID is guessed but no `affirm`/`deny`/`free_of` of it exists
    /// anywhere, so the guesser can never become definite.
    LeakedSpeculation,
    /// A process guesses an AID and later asserts `free_of` of it with no
    /// intervening decider: Equation 19 turns the assertion into a
    /// self-rollback (or it is skipped as consumed) on every schedule.
    DoomedFreeOf,
    /// An AID is decided (`affirm`/`deny`/`free_of`) more than once; §5.2
    /// makes AIDs one-shot, so all but one decider is skipped or undone.
    ConsumedReassertion,
    /// A process executes more `recv` statements than messages the whole
    /// program can ever send to it, so it can never run to completion.
    UnreachableRecv,
    /// A statement names a process or AID the program does not declare
    /// (error — the machine would panic), or a process sends to itself
    /// (warning — legal but usually a mistake in a straight-line program).
    InvalidTarget,
    /// Denying one AID may roll back speculation across many processes;
    /// fired when the may-depend process set reaches a threshold.
    CascadeDepth,
    /// A `deny`/`free_of` may execute while the decider itself depends on
    /// the AID: Equation 15/19 makes that a definite self-deny that rolls
    /// the decider back and skips the statement's own re-execution
    /// (warning — the dependence may not materialize on every schedule).
    DependentDeny,
    /// A `send` whose tag may carry an AID that a `deny`/`free_of`
    /// elsewhere can condemn: the message may arrive as a ghost and be
    /// silently dropped (§7) (warning).
    GhostRisk,
    /// A `guess` of an AID that another process may deny first: the guess
    /// would return `false` with no causal link to the deny (warning).
    GuessDecideRace,
}

impl Lint {
    /// The lint's stable kebab-case name (used in renderers and CLI).
    pub fn name(self) -> &'static str {
        match self {
            Lint::LeakedSpeculation => "leaked-speculation",
            Lint::DoomedFreeOf => "doomed-free-of",
            Lint::ConsumedReassertion => "consumed-reassertion",
            Lint::UnreachableRecv => "unreachable-recv",
            Lint::InvalidTarget => "invalid-target",
            Lint::CascadeDepth => "cascade-depth",
            Lint::DependentDeny => "dependent-deny",
            Lint::GhostRisk => "ghost-risk",
            Lint::GuessDecideRace => "guess-decide-race",
        }
    }

    /// Every lint, in reporting order.
    pub fn all() -> [Lint; 9] {
        [
            Lint::InvalidTarget,
            Lint::LeakedSpeculation,
            Lint::DoomedFreeOf,
            Lint::ConsumedReassertion,
            Lint::UnreachableRecv,
            Lint::CascadeDepth,
            Lint::DependentDeny,
            Lint::GhostRisk,
            Lint::GuessDecideRace,
        ]
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but legal; the program may still run to full
    /// finalization.
    Warning,
    /// Statically doomed: **no** schedule lets the program run to full
    /// finalization (completion with every process definite and no
    /// rollback, ghost, or skipped primitive). Error diagnostics make
    /// [`Analyzer`](crate::Analyzer) reject the program as a
    /// [`ProgramValidator`](hope_core::machine::ProgramValidator).
    Error,
}

impl Severity {
    /// `"warning"` or `"error"`.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding of the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which check fired.
    pub lint: Lint,
    /// How bad it is.
    pub severity: Severity,
    /// The process the finding is anchored to, if any.
    pub proc: Option<usize>,
    /// The statement index within that process, if any.
    pub stmt_idx: Option<usize>,
    /// The AID variable the finding is about, if any. Not rendered (the
    /// message already names it); used programmatically, e.g. by the
    /// dynamic race detector's coverage check.
    pub aid: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Build an error diagnostic anchored at `proc`/`stmt_idx`.
    pub fn error(lint: Lint, proc: usize, stmt_idx: usize, message: impl Into<String>) -> Self {
        Diagnostic {
            lint,
            severity: Severity::Error,
            proc: Some(proc),
            stmt_idx: Some(stmt_idx),
            aid: None,
            message: message.into(),
        }
    }

    /// Build a warning diagnostic anchored at `proc`/`stmt_idx`.
    pub fn warning(lint: Lint, proc: usize, stmt_idx: usize, message: impl Into<String>) -> Self {
        Diagnostic {
            lint,
            severity: Severity::Warning,
            proc: Some(proc),
            stmt_idx: Some(stmt_idx),
            aid: None,
            message: message.into(),
        }
    }

    /// Attach the AID variable the finding is about.
    pub fn with_aid(mut self, aid: usize) -> Self {
        self.aid = Some(aid);
        self
    }
}

impl fmt::Display for Diagnostic {
    /// The one-line text form: `error[lint] P0:3: message`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.lint)?;
        match (self.proc, self.stmt_idx) {
            (Some(p), Some(i)) => write!(f, " P{p}:{i}")?,
            (Some(p), None) => write!(f, " P{p}")?,
            _ => {}
        }
        write!(f, ": {}", self.message)
    }
}

/// Render diagnostics as one line each, ending with a summary line.
pub fn render_text(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diagnostics {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let errors = diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diagnostics.len() - errors;
    out.push_str(&format!(
        "{} error{}, {} warning{}\n",
        errors,
        if errors == 1 { "" } else { "s" },
        warnings,
        if warnings == 1 { "" } else { "s" },
    ));
    out
}

/// Render diagnostics as a JSON array of objects with keys `lint`,
/// `severity`, `proc`, `stmt`, and `message` (`proc`/`stmt` are `null` for
/// program-level findings). Hand-rolled — the analyzer has no serde
/// dependency.
pub fn render_json(diagnostics: &[Diagnostic]) -> String {
    fn esc(s: &str, out: &mut String) {
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
    }
    fn opt(n: Option<usize>) -> String {
        n.map_or_else(|| "null".to_string(), |v| v.to_string())
    }

    let mut out = String::from("[");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"lint\":\"");
        esc(d.lint.name(), &mut out);
        out.push_str("\",\"severity\":\"");
        esc(d.severity.name(), &mut out);
        out.push_str("\",\"proc\":");
        out.push_str(&opt(d.proc));
        out.push_str(",\"stmt\":");
        out.push_str(&opt(d.stmt_idx));
        out.push_str(",\"message\":\"");
        esc(&d.message, &mut out);
        out.push_str("\"}");
    }
    if !diagnostics.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_site_and_message() {
        let d = Diagnostic::error(Lint::DoomedFreeOf, 0, 3, "free_of of a guessed AID");
        assert_eq!(
            d.to_string(),
            "error[doomed-free-of] P0:3: free_of of a guessed AID"
        );
        let d = Diagnostic {
            lint: Lint::LeakedSpeculation,
            severity: Severity::Error,
            proc: None,
            stmt_idx: None,
            aid: None,
            message: "x0 never decided".into(),
        };
        assert_eq!(d.to_string(), "error[leaked-speculation]: x0 never decided");
    }

    #[test]
    fn text_renderer_counts_severities() {
        let ds = vec![
            Diagnostic::error(Lint::UnreachableRecv, 1, 0, "a"),
            Diagnostic::warning(Lint::CascadeDepth, 0, 0, "b"),
            Diagnostic::warning(Lint::InvalidTarget, 0, 1, "c"),
        ];
        let text = render_text(&ds);
        assert!(text.ends_with("1 error, 2 warnings\n"), "{text}");
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn json_renderer_escapes_and_nulls() {
        let ds = vec![Diagnostic {
            lint: Lint::InvalidTarget,
            severity: Severity::Warning,
            proc: Some(2),
            stmt_idx: None,
            aid: None,
            message: "quote \" backslash \\ newline \n".into(),
        }];
        let json = render_json(&ds);
        assert!(json.contains("\"proc\":2,\"stmt\":null"), "{json}");
        assert!(
            json.contains("quote \\\" backslash \\\\ newline \\n"),
            "{json}"
        );
        assert_eq!(render_json(&[]), "[]\n");
    }
}
