//! The race detector driven by `hope-runtime`'s observer hook.
//!
//! The agreement suite exercises the detector against the abstract
//! machine's exhaustive schedules; these tests check the *other*
//! embedding: a real `Simulation` with virtual time, journal replay, and
//! message latency reports the same action stream, and the detector fires
//! on a hand-built decided-AID-reuse schedule while staying silent on the
//! paper's well-behaved Call Streaming example.

use std::sync::Arc;

use hope_analysis::{RaceDetector, RaceKind};
use hope_core::{AidId, ProcessId, RuntimeObserver};
use hope_runtime::{SimConfig, Simulation, Value, VirtualDuration};
use parking_lot::Mutex;

fn ms(v: u64) -> VirtualDuration {
    VirtualDuration::from_millis(v)
}

fn attach(sim: &mut Simulation) -> Arc<Mutex<RaceDetector>> {
    let detector = Arc::new(Mutex::new(RaceDetector::new()));
    let hook = detector.clone();
    sim.set_observer(move |pid, action, effects| {
        hook.lock().observe(pid, action, effects);
    });
    detector
}

/// Two verifiers race to decide the same AID: whichever loses has its
/// decider skipped by §5.2's one-shot rule, and the detector must report
/// the skip as decided-AID reuse.
#[test]
fn detector_fires_on_decided_aid_reuse() {
    let mut sim = Simulation::new(SimConfig::with_seed(7));
    let detector = attach(&mut sim);
    let affirmer = ProcessId(1);
    let denier = ProcessId(2);
    sim.spawn("origin", move |ctx| {
        let x = ctx.aid_init()?;
        ctx.send(affirmer, Value::Int(x.index() as i64))?;
        ctx.send(denier, Value::Int(x.index() as i64))?;
        let _ = ctx.guess(x)?;
        Ok(())
    });
    sim.spawn("affirmer", |ctx| {
        let m = ctx.recv()?;
        let x = AidId::from_index(m.payload.expect_int() as u64);
        ctx.affirm(x)?;
        Ok(())
    });
    // The denier deliberately decides late, after the affirm has consumed
    // the AID: its deny is skipped.
    sim.spawn("denier", |ctx| {
        let m = ctx.recv()?;
        let x = AidId::from_index(m.payload.expect_int() as u64);
        ctx.compute(ms(50))?;
        ctx.deny(x)?;
        Ok(())
    });
    let report = sim.run();
    assert!(report.completed(), "{report}");

    let detector = detector.lock();
    let reuse: Vec<_> = detector
        .races()
        .iter()
        .filter(|r| r.kind == RaceKind::DecidedAidReuse)
        .collect();
    assert_eq!(reuse.len(), 1, "races: {:?}", detector.races());
    assert_eq!(reuse[0].process, ProcessId(2));
    assert_eq!(reuse[0].aid, AidId::from_index(0));
}

/// The paper's Call Streaming skeleton (worker + worrywart, Figure 2): one
/// guess, one affirm, no reuse, no ghosts, no unordered decides. The
/// detector must stay silent.
#[test]
fn detector_is_silent_on_the_call_streaming_example() {
    let mut sim = Simulation::new(SimConfig::with_seed(1));
    let detector = attach(&mut sim);
    let worrywart = ProcessId(1);
    sim.spawn("worker", move |ctx| {
        let part_page = ctx.aid_init()?;
        ctx.send(worrywart, Value::Int(part_page.index() as i64))?;
        if ctx.guess(part_page)? {
            ctx.output("summary printed on current page")?;
        } else {
            ctx.output("new page forced")?;
        }
        Ok(())
    });
    sim.spawn("worrywart", |ctx| {
        let msg = ctx.recv()?;
        let aid = AidId::from_index(msg.payload.expect_int() as u64);
        ctx.compute(ms(1))?; // the real page-position check
        ctx.affirm(aid)?;
        Ok(())
    });
    let report = sim.run();
    assert!(report.completed(), "{report}");
    assert_eq!(
        report.output_lines(),
        vec!["summary printed on current page"]
    );
    let detector = detector.lock();
    assert!(detector.races().is_empty(), "{:?}", detector.races());
}

/// A deny that rolls the guesser back is a *causal* consequence — the
/// re-executed guess returning `false` (Equation 24) must not be reported
/// as a guess/decide race. But the ghost copies of the rolled-back sends
/// are real send-after-deny anomalies and must be.
#[test]
fn rollback_reexecution_is_ordered_but_ghosts_are_reported() {
    let mut sim = Simulation::new(SimConfig::with_seed(3));
    let detector = attach(&mut sim);
    let relay = ProcessId(1);
    let judge = ProcessId(2);
    sim.spawn("origin", move |ctx| {
        let x = ctx.aid_init()?;
        ctx.send(judge, Value::Int(x.index() as i64))?;
        let flag = ctx.guess(x)?;
        ctx.send(relay, Value::Bool(flag))?;
        Ok(())
    });
    sim.spawn("relay", |ctx| {
        let m = ctx.recv()?;
        ctx.output(format!("saw {}", m.payload))?;
        Ok(())
    });
    sim.spawn("judge", |ctx| {
        let m = ctx.recv()?;
        let x = AidId::from_index(m.payload.expect_int() as u64);
        ctx.compute(ms(5))?;
        ctx.deny(x)?;
        Ok(())
    });
    let report = sim.run();
    assert!(report.completed(), "{report}");
    assert_eq!(report.output_lines(), vec!["saw false"]);

    let detector = detector.lock();
    assert!(
        !detector
            .races()
            .iter()
            .any(|r| r.kind == RaceKind::GuessAfterDecide),
        "rollback must causally order the re-executed guess: {:?}",
        detector.races()
    );
    assert!(
        detector
            .races()
            .iter()
            .any(|r| r.kind == RaceKind::SendAfterDeny),
        "the ghost copy of the speculative send must be reported: {:?}",
        detector.races()
    );
}
