//! End-to-end tests of the `hope-lint` binary: argument handling, both
//! renderers, the parser front-end, and exit codes.

use std::io::Write;
use std::process::{Command, Stdio};

fn hope_lint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hope-lint"))
}

#[test]
fn stdin_program_with_errors_exits_one() {
    let mut child = hope_lint()
        .arg("-")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn hope-lint");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(b"process P0:\n  guess(x0)\n  free_of(x0)\n")
        .expect("write program");
    let out = child.wait_with_output().expect("run hope-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("error[doomed-free-of] P0:1:"), "{stdout}");
    assert!(stdout.contains("1 error, 0 warnings"), "{stdout}");
}

#[test]
fn clean_file_exits_zero() {
    let dir = std::env::temp_dir();
    let path = dir.join("hope_lint_cli_clean.hope");
    std::fs::write(
        &path,
        "process P0:\n  guess(x0)\nprocess P1:\n  affirm(x0)\n",
    )
    .expect("write temp program");
    let out = hope_lint().arg(&path).output().expect("run hope-lint");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert_eq!(stdout, "0 errors, 0 warnings\n");
    std::fs::remove_file(&path).ok();
}

#[test]
fn json_output_is_emitted() {
    let mut child = hope_lint()
        .args(["--json", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn hope-lint");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(b"process P0:\n  recv\n")
        .expect("write program");
    let out = child.wait_with_output().expect("run hope-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.starts_with("[\n"), "{stdout}");
    assert!(stdout.contains("\"lint\":\"unreachable-recv\""), "{stdout}");
    assert!(stdout.contains("\"severity\":\"error\""), "{stdout}");
}

#[test]
fn generate_mode_lints_without_a_file() {
    let out = hope_lint()
        .args(["--generate", "7,3,20,4", "--print"])
        .output()
        .expect("run hope-lint");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    // --print dumps the program before the diagnostics.
    assert!(stdout.starts_with("process P0:"), "{stdout}");
    assert!(
        stdout.contains("warning") || stdout.contains("error"),
        "{stdout}"
    );
}

#[test]
fn cascade_threshold_flag_is_honoured() {
    let program = "process P0:\n  guess(x0)\n  send(P1)\n  affirm(x0)\nprocess P1:\n  recv\n";
    for (threshold, expect_warn) in [("2", true), ("3", false)] {
        let mut child = hope_lint()
            .args(["--cascade-threshold", threshold, "-"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn hope-lint");
        child
            .stdin
            .take()
            .expect("piped stdin")
            .write_all(program.as_bytes())
            .expect("write program");
        let out = child.wait_with_output().expect("run hope-lint");
        assert_eq!(
            out.status.code(),
            Some(0),
            "warnings never fail the exit code"
        );
        let stdout = String::from_utf8(out.stdout).expect("utf8");
        assert_eq!(
            stdout.contains("warning[cascade-depth]"),
            expect_warn,
            "threshold {threshold}: {stdout}"
        );
    }
}

fn run_on_stdin(args: &[&str], program: &str) -> std::process::Output {
    let mut child = hope_lint()
        .args(args)
        .arg("-")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn hope-lint");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(program.as_bytes())
        .expect("write program");
    child.wait_with_output().expect("run hope-lint")
}

/// A chain whose only diagnostic-free speculation has a wide cascade:
/// clean, so both ranking modes must still exit 0.
const CHAIN: &str = "process P0:\n  guess(x0)\n  send(P1)\n  affirm(x0)\n\
                     process P1:\n  recv\n  compute\n";

#[test]
fn rank_mode_prints_damage_ordering_and_keeps_the_lint_verdict() {
    let out = run_on_stdin(&["--rank"], CHAIN);
    assert_eq!(out.status.code(), Some(0), "clean program stays exit 0");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.starts_with("#1 P0:0 guess(x0): damage "), "{stdout}");
    assert!(stdout.ends_with("1 speculation ranked\n"), "{stdout}");
    assert!(!stdout.contains("warning"), "{stdout}");

    // A doomed program still exits 1 under --rank: the ranking swaps the
    // output, not the verdict.
    let doomed = "process P0:\n  guess(x0)\n  free_of(x0)\n";
    let out = run_on_stdin(&["--rank"], doomed);
    assert_eq!(out.status.code(), Some(1), "errors still fail under --rank");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("speculation ranked"), "{stdout}");
    assert!(!stdout.contains("doomed-free-of"), "{stdout}");
}

#[test]
fn cost_mode_lists_sites_in_program_order() {
    let two = "process P0:\n  compute\n  guess(x1)\n  affirm(x1)\n\
               process P1:\n  guess(x0)\n  affirm(x0)\n";
    let out = run_on_stdin(&["--cost"], two);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(lines[0].starts_with("P0:1 guess(x1):"), "{stdout}");
    assert!(lines[1].starts_with("P1:0 guess(x0):"), "{stdout}");
    assert_eq!(lines[2], "2 speculations costed");

    let out = run_on_stdin(&["--cost", "--json"], two);
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(
        stdout.starts_with("[\n  {\"proc\":0,\"stmt\":1,"),
        "{stdout}"
    );
    assert!(stdout.contains("\"damage\":"), "{stdout}");

    let out = run_on_stdin(&["--rank", "--json"], two);
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("\"rank\":1"), "{stdout}");
}

#[test]
fn help_documents_the_exit_code_contract() {
    for flag in ["-h", "--help"] {
        let out = hope_lint().arg(flag).output().expect("run hope-lint");
        assert_eq!(out.status.code(), Some(0), "help exits 0");
        let stdout = String::from_utf8(out.stdout).expect("utf8");
        assert!(stdout.contains("Exit status:"), "{stdout}");
        for needle in [
            "no error-severity diagnostic",
            "at least one error-severity diagnostic",
            "usage error, unreadable input, or program parse failure",
            // The --mc refutation clause of the exit-2 contract: an
            // exhausted checker finding a pristine schedule for an
            // error-flagged program is an analyzer soundness bug.
            "pristine schedule for an error-flagged program",
            "analyzer",
            "soundness bug",
            "--rank",
            "--cost",
            "--cascade-threshold N",
        ] {
            assert!(stdout.contains(needle), "missing {needle:?}: {stdout}");
        }
    }
}

#[test]
fn mc_json_emits_agreement_counts_and_fraction() {
    // The aggregation contract: --json --mc reports confirmed/unverified/
    // refuted as 0/1 *counts* (so multi-run scripts can sum fields) plus
    // the explored fraction of the reduced schedule space.
    let out = run_on_stdin(
        &["--json", "--mc", "-"],
        "process P0:\n  guess(x0)\nprocess P1:\n  affirm(x0)\n",
    );
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("\"agreement\":\"confirmed\""), "{stdout}");
    assert!(
        stdout.contains("\"confirmed\":1,\"unverified\":0,\"refuted\":0"),
        "{stdout}"
    );
    assert!(stdout.contains("\"explored_fraction\":1.0000"), "{stdout}");
}

#[test]
fn mc_budget_fallback_logs_explored_fraction() {
    // Starved of states, the checker must say *how much* of the reduced
    // space it covered before giving up — in text and in JSON — and an
    // unverified run must not change the lint exit code.
    let program = "process P0:\n  guess(x0)\nprocess P1:\n  affirm(x0)\n";
    let out = run_on_stdin(&["--mc", "--mc-states", "1", "-"], program);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("mc: unverified"), "{stdout}");
    assert!(stdout.contains("% of the reduced space"), "{stdout}");

    let out = run_on_stdin(&["--json", "--mc", "--mc-states", "1", "-"], program);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(
        stdout.contains("\"confirmed\":0,\"unverified\":1,\"refuted\":0"),
        "{stdout}"
    );
    assert!(!stdout.contains("\"explored_fraction\":1.0000"), "{stdout}");
}

#[test]
fn rank_and_cost_conflict_exits_two() {
    let out = hope_lint()
        .args(["--rank", "--cost", "-"])
        .output()
        .expect("run hope-lint");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn bad_usage_and_bad_programs_exit_two() {
    let out = hope_lint().output().expect("run hope-lint");
    assert_eq!(out.status.code(), Some(2), "no source given");

    let out = hope_lint()
        .arg("--definitely-not-a-flag")
        .output()
        .expect("run hope-lint");
    assert_eq!(out.status.code(), Some(2));

    let mut child = hope_lint()
        .arg("-")
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn hope-lint");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(b"process P0:\n  hope(x0)\n")
        .expect("write program");
    let out = child.wait_with_output().expect("run hope-lint");
    assert_eq!(out.status.code(), Some(2), "parse error");
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("line 2"), "{stderr}");
}
