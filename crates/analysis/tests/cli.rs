//! End-to-end tests of the `hope-lint` binary: argument handling, both
//! renderers, the parser front-end, and exit codes.

use std::io::Write;
use std::process::{Command, Stdio};

fn hope_lint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hope-lint"))
}

#[test]
fn stdin_program_with_errors_exits_one() {
    let mut child = hope_lint()
        .arg("-")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn hope-lint");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(b"process P0:\n  guess(x0)\n  free_of(x0)\n")
        .expect("write program");
    let out = child.wait_with_output().expect("run hope-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("error[doomed-free-of] P0:1:"), "{stdout}");
    assert!(stdout.contains("1 error, 0 warnings"), "{stdout}");
}

#[test]
fn clean_file_exits_zero() {
    let dir = std::env::temp_dir();
    let path = dir.join("hope_lint_cli_clean.hope");
    std::fs::write(
        &path,
        "process P0:\n  guess(x0)\nprocess P1:\n  affirm(x0)\n",
    )
    .expect("write temp program");
    let out = hope_lint().arg(&path).output().expect("run hope-lint");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert_eq!(stdout, "0 errors, 0 warnings\n");
    std::fs::remove_file(&path).ok();
}

#[test]
fn json_output_is_emitted() {
    let mut child = hope_lint()
        .args(["--json", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn hope-lint");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(b"process P0:\n  recv\n")
        .expect("write program");
    let out = child.wait_with_output().expect("run hope-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.starts_with("[\n"), "{stdout}");
    assert!(stdout.contains("\"lint\":\"unreachable-recv\""), "{stdout}");
    assert!(stdout.contains("\"severity\":\"error\""), "{stdout}");
}

#[test]
fn generate_mode_lints_without_a_file() {
    let out = hope_lint()
        .args(["--generate", "7,3,20,4", "--print"])
        .output()
        .expect("run hope-lint");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    // --print dumps the program before the diagnostics.
    assert!(stdout.starts_with("process P0:"), "{stdout}");
    assert!(
        stdout.contains("warning") || stdout.contains("error"),
        "{stdout}"
    );
}

#[test]
fn cascade_threshold_flag_is_honoured() {
    let program = "process P0:\n  guess(x0)\n  send(P1)\n  affirm(x0)\nprocess P1:\n  recv\n";
    for (threshold, expect_warn) in [("2", true), ("3", false)] {
        let mut child = hope_lint()
            .args(["--cascade-threshold", threshold, "-"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn hope-lint");
        child
            .stdin
            .take()
            .expect("piped stdin")
            .write_all(program.as_bytes())
            .expect("write program");
        let out = child.wait_with_output().expect("run hope-lint");
        assert_eq!(
            out.status.code(),
            Some(0),
            "warnings never fail the exit code"
        );
        let stdout = String::from_utf8(out.stdout).expect("utf8");
        assert_eq!(
            stdout.contains("warning[cascade-depth]"),
            expect_warn,
            "threshold {threshold}: {stdout}"
        );
    }
}

#[test]
fn bad_usage_and_bad_programs_exit_two() {
    let out = hope_lint().output().expect("run hope-lint");
    assert_eq!(out.status.code(), Some(2), "no source given");

    let out = hope_lint()
        .arg("--definitely-not-a-flag")
        .output()
        .expect("run hope-lint");
    assert_eq!(out.status.code(), Some(2));

    let mut child = hope_lint()
        .arg("-")
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn hope-lint");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(b"process P0:\n  hope(x0)\n")
        .expect("write program");
    let out = child.wait_with_output().expect("run hope-lint");
    assert_eq!(out.status.code(), Some(2), "parse error");
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("line 2"), "{stderr}");
}
