//! Golden tests for the cascade cost model: pinned text and JSON output,
//! and deterministic tie-breaking.

use hope_analysis::cost::{self, rank, rank_with, render_rank_json, render_rank_text, CostWeights};
use hope_core::program::{Program, Stmt};

/// The bench-suite chain shape: an origin guesses and fans out through a
/// relay while a judge holds the verdict.
fn chain() -> Program {
    Program::new(vec![
        // P0: origin — guess, tagged sends to relay and judge, then a
        // second (cheap) guess that stays local.
        vec![
            Stmt::Guess(0),
            Stmt::Send { to: 1 },
            Stmt::Send { to: 3 },
            Stmt::Guess(1),
            Stmt::Affirm(1),
        ],
        // P1: relay — picks up the dependence and forwards it.
        vec![Stmt::Recv, Stmt::Compute, Stmt::Send { to: 2 }],
        // P2: leaf.
        vec![Stmt::Recv, Stmt::Compute],
        // P3: judge — decides x0.
        vec![Stmt::Recv, Stmt::Compute, Stmt::Deny(0)],
    ])
}

#[test]
fn chain_rank_text_is_pinned() {
    let costs = rank(&chain());
    let text = render_rank_text(&costs);
    // x0's cascade reaches every process (12 statements may re-run, three
    // tagged sends may ghost); x1 never leaves P0, but its guess sits
    // behind three statements of checkpointed state.
    let expected = "\
#1 P0:0 guess(x0): damage 21 (reexec 12, checkpoint 0, messages 3)
#2 P0:3 guess(x1): damage 4 (reexec 1, checkpoint 3, messages 0)
2 speculations ranked
";
    assert_eq!(text, expected);
}

#[test]
fn chain_rank_json_is_pinned() {
    let costs = rank(&chain());
    let json = render_rank_json(&costs);
    let expected = r#"[
  {"rank":1,"proc":0,"stmt":0,"aid":0,"damage":21,"reexec":12,"checkpoint":0,"messages":3},
  {"rank":2,"proc":0,"stmt":3,"aid":1,"damage":4,"reexec":1,"checkpoint":3,"messages":0}
]
"#;
    assert_eq!(json, expected);
}

#[test]
fn cost_listing_is_site_ordered_and_unnumbered() {
    let mut costs = rank(&chain());
    costs.sort_by_key(|c| (c.proc, c.stmt_idx, c.aid));
    let text = cost::render_cost_text(&costs);
    let expected = "\
P0:0 guess(x0): damage 21 (reexec 12, checkpoint 0, messages 3)
P0:3 guess(x1): damage 4 (reexec 1, checkpoint 3, messages 0)
2 speculations costed
";
    assert_eq!(text, expected);
}

#[test]
fn equal_damage_ties_break_by_site_deterministically() {
    // Four structurally identical speculations — two processes share each
    // AID, AID numbers run *against* process order: damage is equal, so
    // the order must be exactly (proc, stmt_idx, aid) ascending — and
    // stable across repeated runs.
    let program = Program::new(vec![
        vec![Stmt::Guess(1), Stmt::Compute],
        vec![Stmt::Guess(1), Stmt::Compute],
        vec![Stmt::Guess(0), Stmt::Compute],
        vec![Stmt::Guess(0), Stmt::Compute],
    ]);
    let costs = rank(&program);
    assert_eq!(costs.len(), 4);
    assert!(costs.windows(2).all(|w| w[0].damage == w[1].damage));
    let sites: Vec<(usize, usize, usize)> =
        costs.iter().map(|c| (c.proc, c.stmt_idx, c.aid)).collect();
    assert_eq!(sites, vec![(0, 0, 1), (1, 0, 1), (2, 0, 0), (3, 0, 0)]);
    for _ in 0..5 {
        assert_eq!(rank(&program), costs);
    }
}

#[test]
fn weights_scale_the_components() {
    let program = chain();
    let flow = hope_analysis::analyze_flow(&program);
    let default = rank_with(&program, &flow, &CostWeights::default());
    let message_heavy = rank_with(
        &program,
        &flow,
        &CostWeights {
            checkpoint: 1,
            reexec: 1,
            message: 100,
        },
    );
    let x0_default = default.iter().find(|c| c.aid == 0).unwrap();
    let x0_heavy = message_heavy.iter().find(|c| c.aid == 0).unwrap();
    assert_eq!(x0_default.messages, x0_heavy.messages);
    assert_eq!(
        x0_heavy.damage,
        x0_heavy.checkpoint + x0_heavy.reexec + 100 * x0_heavy.messages
    );
    assert!(x0_heavy.damage > x0_default.damage);
}
