//! The repo's own example programs (`examples/programs/*.hope`) must stay
//! free of error-severity diagnostics — the same gate CI enforces by
//! running `hope-lint` over each file.

use std::path::PathBuf;

use hope_analysis::{Analyzer, Severity};
use hope_core::program::Program;

fn programs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/programs")
}

#[test]
fn every_example_program_is_error_free() {
    let mut seen = 0usize;
    for entry in std::fs::read_dir(programs_dir()).expect("examples/programs exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_none_or(|e| e != "hope") {
            continue;
        }
        seen += 1;
        let src = std::fs::read_to_string(&path).expect("readable program");
        let program: Program = src
            .parse()
            .unwrap_or_else(|e| panic!("{}: parse failure: {e}", path.display()));
        let errors: Vec<_> = Analyzer::new()
            .analyze(&program)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(
            errors.is_empty(),
            "{}: error diagnostics on a shipped example:\n{errors:?}",
            path.display()
        );
    }
    assert!(seen >= 4, "expected the example programs, found {seen}");
}

#[test]
fn the_showcase_example_warns_exactly_as_its_header_promises() {
    // cascade_chain.hope exists to display the speculative-hazard
    // warnings; pin the set so the example and the analyzer cannot drift
    // apart silently.
    let src = std::fs::read_to_string(programs_dir().join("cascade_chain.hope")).expect("example");
    let program: Program = src.parse().expect("parses");
    let mut names: Vec<&str> = Analyzer::new()
        .analyze(&program)
        .iter()
        .map(|d| d.lint.name())
        .collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(
        names,
        vec![
            "cascade-depth",
            "dependent-deny",
            "ghost-risk",
            "guess-decide-race",
        ]
    );
}
