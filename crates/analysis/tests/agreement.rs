//! Static-vs-dynamic agreement: every error-severity verdict must agree
//! with actual machine execution.
//!
//! The contract (the crate's zero-false-positive guarantee): if the
//! analyzer emits **any error diagnostic**, then **no schedule** lets the
//! program run to *full finalization* — completion with every process
//! definite and no rollback event, ghost message, or skipped primitive.
//! Contrapositively, any program observed to finalize fully on some
//! schedule must be free of error diagnostics.
//!
//! Checked two ways: **schedule-completely** over every small program in
//! two fixed shapes (all 7⁴ two-process programs of length 2 over one AID,
//! and all 7³ one-process programs of length 3) using the [`hope_mc`]
//! exhaustive scheduler — so an error diagnostic is checked against *every*
//! inequivalent schedule, not a sample — and over seeded random large
//! programs from [`Program::generate`], which exceed the model-checking
//! budget and fall back to a round-robin schedule plus several seeded
//! random schedules (the fallback can establish "pristine on some
//! schedule" but never prove "no schedule"; each suite logs which path
//! ran for how many programs).

use hope_analysis::{cost, covered_by, Analyzer, RaceDetector, RaceKind};
use hope_core::machine::{Event, Machine};
use hope_core::program::{Program, Stmt};
use hope_mc::{check, McConfig};

const SCHEDULE_SEEDS: u64 = 12;

/// Run `program` under one schedule and decide whether the run reached
/// full finalization.
fn pristine_under(program: &Program, seed: Option<u64>, fuel: u64) -> bool {
    let mut m = Machine::new(program.clone());
    let report = match seed {
        None => m.run(fuel),
        Some(s) => m.run_seeded(fuel, s),
    };
    if !report.completed {
        return false;
    }
    let stats = m.engine().stats();
    if stats.rollback_events != 0 || stats.ghosts != 0 {
        return false;
    }
    (0..program.process_count()).all(|p| {
        !m.engine().is_speculative(m.pid(p)).expect("registered pid")
            && m.history(p)
                .states()
                .iter()
                .all(|s| !matches!(s.event, Event::Skipped { .. }))
    })
}

/// What schedule exploration established about a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PristineVerdict {
    /// Some schedule runs to full finalization (witnessed).
    Pristine,
    /// **No** schedule finalizes — proven over the full reduced
    /// interleaving space by an `Exhausted` model-checking run.
    NoSchedule,
    /// The model-checking budget ran out and no sampled schedule
    /// finalized: absence of evidence, not a proof. The pre-`hope-mc`
    /// suite conflated this with [`PristineVerdict::NoSchedule`].
    Unknown,
}

/// Tallies of which exploration path decided each program, so the suites
/// can log (and, on the exhaustive corpora, assert) coverage. For
/// over-budget programs the checker's [`explored_fraction`] is
/// accumulated, so the fallback log says how much of the reduced space
/// the aborted exhaustive runs did cover — "sampled" with a number
/// attached, never a bare shrug.
///
/// [`explored_fraction`]: hope_mc::McReport::explored_fraction
#[derive(Debug, Default)]
struct PathStats {
    model_checked: usize,
    fell_back: usize,
    /// Sum of explored fractions over the `fell_back` programs.
    fallback_fraction_sum: f64,
    /// Smallest explored fraction seen among fallbacks.
    fallback_fraction_min: Option<f64>,
}

impl PathStats {
    fn log(&self, context: &str) {
        if self.fell_back == 0 {
            eprintln!(
                "{context}: {} programs schedule-complete via hope-mc, 0 over budget",
                self.model_checked
            );
            return;
        }
        eprintln!(
            "{context}: {} programs schedule-complete via hope-mc, \
             {} over budget (seeded-schedule fallback; exhaustive runs \
             covered {:.1}% of the reduced space on average, min {:.1}%)",
            self.model_checked,
            self.fell_back,
            100.0 * self.fallback_fraction_sum / self.fell_back as f64,
            100.0 * self.fallback_fraction_min.unwrap_or(0.0),
        );
    }
}

/// Decide [`PristineVerdict`] for `program`: exhaustive model checking
/// first; seeded-schedule sampling only when the budget runs out.
fn pristine_verdict(
    program: &Program,
    cfg: &McConfig,
    fuel: u64,
    stats: &mut PathStats,
) -> PristineVerdict {
    let report = check(program, cfg);
    if report.completeness.is_exhausted() {
        stats.model_checked += 1;
        return if report.pristine_witness.is_some() {
            PristineVerdict::Pristine
        } else {
            debug_assert!(report.proves_no_pristine_schedule());
            PristineVerdict::NoSchedule
        };
    }
    stats.fell_back += 1;
    let fraction = report.explored_fraction();
    stats.fallback_fraction_sum += fraction;
    stats.fallback_fraction_min = Some(match stats.fallback_fraction_min {
        Some(m) => m.min(fraction),
        None => fraction,
    });
    let sampled = pristine_under(program, None, fuel)
        || (0..SCHEDULE_SEEDS).any(|s| pristine_under(program, Some(s), fuel));
    if sampled {
        PristineVerdict::Pristine
    } else {
        PristineVerdict::Unknown
    }
}

/// The statement alphabet for the exhaustive sweeps: every statement form,
/// one AID, `send` targeting `peer`.
fn alphabet(peer: usize) -> [Stmt; 7] {
    [
        Stmt::Guess(0),
        Stmt::Affirm(0),
        Stmt::Deny(0),
        Stmt::FreeOf(0),
        Stmt::Compute,
        Stmt::Send { to: peer },
        Stmt::Recv,
    ]
}

fn check_agreement(
    program: &Program,
    cfg: &McConfig,
    fuel: u64,
    context: &str,
    stats: &mut PathStats,
) -> (bool, bool) {
    let errors = Analyzer::new().errors(program);
    let verdict = pristine_verdict(program, cfg, fuel, stats);
    assert!(
        errors.is_empty() || verdict != PristineVerdict::Pristine,
        "{context}: static verdict disagrees with execution\n\
         program:\n{program}\nerrors: {errors:?}\n\
         but some schedule ran to full finalization"
    );
    (!errors.is_empty(), verdict == PristineVerdict::Pristine)
}

#[test]
fn exhaustive_two_process_agreement() {
    let mut flagged = 0usize;
    let mut pristine_count = 0usize;
    let mut total = 0usize;
    let mut stats = PathStats::default();
    let cfg = McConfig::default();
    for a in alphabet(1) {
        for b in alphabet(1) {
            for c in alphabet(0) {
                for d in alphabet(0) {
                    let program = Program {
                        code: vec![vec![a, b], vec![c, d]],
                        aid_count: 1,
                    };
                    let (err, pristine) =
                        check_agreement(&program, &cfg, 500, "two-process exhaustive", &mut stats);
                    flagged += usize::from(err);
                    pristine_count += usize::from(pristine);
                    total += 1;
                }
            }
        }
    }
    stats.log("two-process exhaustive (7^4)");
    assert_eq!(total, 7usize.pow(4));
    // Every program in the envelope is small enough to model-check: the
    // agreement above is schedule-complete, not sampled.
    assert_eq!(stats.fell_back, 0, "7^4 envelope must stay in budget");
    // The sweep must exercise both sides of the contract heavily, or the
    // agreement claim would be vacuous.
    assert!(flagged > total / 10, "only {flagged}/{total} flagged");
    assert!(
        pristine_count > total / 10,
        "only {pristine_count}/{total} pristine"
    );
}

#[test]
fn exhaustive_single_process_agreement() {
    // Single process; `send` can only target the process itself, which is
    // the self-send warning's territory — still legal to execute.
    let mut flagged = 0usize;
    let mut pristine_count = 0usize;
    let mut stats = PathStats::default();
    let cfg = McConfig::default();
    for a in alphabet(0) {
        for b in alphabet(0) {
            for c in alphabet(0) {
                let program = Program {
                    code: vec![vec![a, b, c]],
                    aid_count: 1,
                };
                let (err, pristine) =
                    check_agreement(&program, &cfg, 500, "single-process exhaustive", &mut stats);
                flagged += usize::from(err);
                pristine_count += usize::from(pristine);
            }
        }
    }
    stats.log("single-process exhaustive (7^3)");
    assert_eq!(stats.fell_back, 0, "7^3 envelope must stay in budget");
    assert!(flagged > 0 && pristine_count > 0);
}

#[test]
fn error_lints_are_proven_over_the_full_schedule_space() {
    // The sharpest form of the zero-false-positive contract: for every
    // error-flagged program in the 7⁴ envelope, the model checker must
    // *prove* — an `Exhausted` run of the full reduced interleaving
    // space with no pristine terminal — that no schedule finalizes.
    let cfg = McConfig::default();
    let mut proven = 0usize;
    for a in alphabet(1) {
        for b in alphabet(1) {
            for c in alphabet(0) {
                for d in alphabet(0) {
                    let program = Program {
                        code: vec![vec![a, b], vec![c, d]],
                        aid_count: 1,
                    };
                    if Analyzer::new().errors(&program).is_empty() {
                        continue;
                    }
                    let report = check(&program, &cfg);
                    assert!(
                        report.proves_no_pristine_schedule(),
                        "error lint not proven over the full space:\n{program}\n\
                         completeness: {:?}, witness: {:?}",
                        report.completeness,
                        report.pristine_witness
                    );
                    proven += 1;
                }
            }
        }
    }
    eprintln!("error-lint claims proven schedule-completely: {proven}");
    assert!(proven > 200, "only {proven} error programs in the envelope");
}

#[test]
fn generated_large_program_agreement() {
    let mut flagged = 0usize;
    let mut stats = PathStats::default();
    // Generated programs mostly exceed an exhaustive search; cap the
    // budget so the suite stays fast and the fallback path is exercised.
    let cfg = McConfig {
        max_states: 1_000,
        ..McConfig::default()
    };
    for seed in 0..40u64 {
        let program = Program::generate(seed, 4, 25, 4);
        let (err, _) = check_agreement(&program, &cfg, 50_000, "generated 4x25", &mut stats);
        flagged += usize::from(err);
    }
    // Random programs re-decide AIDs constantly; most must be flagged.
    assert!(flagged > 20, "only {flagged}/40 generated programs flagged");

    for seed in 100..110u64 {
        let program = Program::generate(seed, 6, 40, 6);
        check_agreement(&program, &cfg, 100_000, "generated 6x40", &mut stats);
    }
    stats.log("generated programs");
}

#[test]
fn budget_exhaustion_is_not_a_no_schedule_proof() {
    // Regression: the pre-`hope-mc` suite returned a single bool from
    // schedule sampling, conflating "the budget/fuel ran out" with "no
    // schedule finalizes". The two must stay distinguishable.
    let pristine_but_long = Program {
        code: vec![{
            let mut v = vec![Stmt::Guess(0), Stmt::Affirm(0)];
            v.extend(std::iter::repeat_n(Stmt::Compute, 40));
            v
        }],
        aid_count: 1,
    };
    let doomed: Program = "process P0:\n guess(x0)\n deny(x0)\n".parse().unwrap();

    // Starved of both model-checking budget and execution fuel, the
    // pristine program must come back Unknown — not NoSchedule.
    let starved = McConfig {
        max_states: 1,
        ..McConfig::default()
    };
    let mut stats = PathStats::default();
    assert_eq!(
        pristine_verdict(&pristine_but_long, &starved, 5, &mut stats),
        PristineVerdict::Unknown
    );
    assert_eq!(stats.fell_back, 1);

    // With a real budget the same program is witnessed pristine...
    assert_eq!(
        pristine_verdict(&pristine_but_long, &McConfig::default(), 500, &mut stats),
        PristineVerdict::Pristine
    );
    // ...while the doomed program earns an actual proof, which starving
    // the checker must *lose* (Unknown), never fabricate.
    assert_eq!(
        pristine_verdict(&doomed, &McConfig::default(), 500, &mut stats),
        PristineVerdict::NoSchedule
    );
    assert_eq!(
        pristine_verdict(&doomed, &starved, 5, &mut stats),
        PristineVerdict::Unknown
    );
}

/// Run `program` under the round-robin schedule plus every seeded schedule
/// with a [`RaceDetector`] attached, and assert each dynamic race report is
/// predicted by a static diagnostic ([`covered_by`]). Returns per-kind race
/// counts `[decided-aid-reuse, send-after-deny, guess-after-decide]`.
fn check_race_coverage(program: &Program, fuel: u64, context: &str) -> [usize; 3] {
    let diagnostics = Analyzer::new().analyze(program);
    let mut counts = [0usize; 3];
    for seed in std::iter::once(None).chain((0..SCHEDULE_SEEDS).map(Some)) {
        let mut detector = RaceDetector::new();
        let mut m = Machine::new(program.clone());
        match seed {
            None => m.run_observed(fuel, &mut detector),
            Some(s) => m.run_seeded_observed(fuel, s, &mut detector),
        };
        for race in detector.races() {
            counts[match race.kind {
                RaceKind::DecidedAidReuse => 0,
                RaceKind::SendAfterDeny => 1,
                RaceKind::GuessAfterDecide => 2,
            }] += 1;
            assert!(
                covered_by(race, &diagnostics),
                "{context}: dynamic race not predicted statically\n\
                 program:\n{program}\nschedule seed: {seed:?}\n\
                 race: {race:?}\ndiagnostics: {diagnostics:?}"
            );
        }
    }
    counts
}

#[test]
fn exhaustive_dynamic_races_are_statically_covered() {
    // The dynamic half of the agreement contract: on the same exhaustive
    // spaces the blanket test sweeps, every race the runtime detector
    // reports — under every schedule — must be covered by a static
    // warning on the same AID. (The static side may over-approximate; the
    // dynamic side must never surprise it.)
    let mut totals = [0usize; 3];
    for a in alphabet(1) {
        for b in alphabet(1) {
            for c in alphabet(0) {
                for d in alphabet(0) {
                    let program = Program {
                        code: vec![vec![a, b], vec![c, d]],
                        aid_count: 1,
                    };
                    let counts = check_race_coverage(&program, 500, "two-process races");
                    for (t, c) in totals.iter_mut().zip(counts) {
                        *t += c;
                    }
                }
            }
        }
    }
    for a in alphabet(0) {
        for b in alphabet(0) {
            for c in alphabet(0) {
                let program = Program {
                    code: vec![vec![a, b, c]],
                    aid_count: 1,
                };
                let counts = check_race_coverage(&program, 500, "single-process races");
                for (t, c) in totals.iter_mut().zip(counts) {
                    *t += c;
                }
            }
        }
    }
    // Non-vacuity: the corpus must actually trigger every race shape, or
    // the coverage claim proves nothing.
    assert!(
        totals.iter().all(|&t| t > 0),
        "race shapes unexercised: [reuse, ghost, guess-race] = {totals:?}"
    );
}

/// A cascade chain with `relays` relay processes: the origin guesses and
/// forwards its tagged dependence hop by hop; the far end denies.
fn cascade_chain(relays: usize) -> Program {
    let mut code = vec![vec![Stmt::Guess(0), Stmt::Send { to: 1 }]];
    for r in 0..relays {
        code.push(vec![Stmt::Recv, Stmt::Compute, Stmt::Send { to: r + 2 }]);
    }
    code.push(vec![Stmt::Recv, Stmt::Compute, Stmt::Deny(0)]);
    Program::new(code)
}

#[test]
fn cost_rank_correlates_with_measured_rollback_work() {
    // The cost model's damage score is a static prediction of how much
    // work a deny destroys. Check it against the machine: on cascade
    // chains of growing length, predicted damage and measured rollback
    // work (intervals discarded when the far-end deny lands) must rank
    // the programs identically — and both must grow strictly.
    let mut predicted = Vec::new();
    let mut measured = Vec::new();
    for relays in [0usize, 1, 2, 4] {
        let program = cascade_chain(relays);
        let costs = cost::rank(&program);
        assert_eq!(costs.len(), 1, "one speculation per chain");
        predicted.push(costs[0].damage);

        // Round-robin lets the whole chain go speculative before the
        // deny lands, so the measured rollback reflects the full cascade.
        let mut m = Machine::new(program.clone());
        let report = m.run(10_000);
        assert!(report.completed, "chain with {relays} relays must finish");
        let stats = m.engine().stats();
        assert!(stats.rollback_events > 0, "the deny must trigger rollback");
        measured.push(stats.rolled_back_intervals + stats.ghosts);
    }
    assert!(
        predicted.windows(2).all(|w| w[0] < w[1]),
        "predicted damage must grow with chain length: {predicted:?}"
    );
    assert!(
        measured.windows(2).all(|w| w[0] < w[1]),
        "measured rollback work must grow with chain length: {measured:?}"
    );
    // Same ranking both ways: the most-damaging prediction is the
    // most-damaging measurement.
    let rank_of = |xs: &[u64]| {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(xs[i]));
        idx
    };
    assert_eq!(rank_of(&predicted), rank_of(&measured));
}

#[test]
fn per_lint_dynamic_claims_hold_on_the_exhaustive_corpus() {
    // Sharper per-lint claims than the blanket agreement, over the
    // two-process corpus:
    // * leaked-speculation: every *completed* run leaves some process
    //   speculative or rolled back;
    // * consumed-reassertion / doomed-free-of: every completed run has a
    //   skip or a rollback;
    // * unreachable-recv: no run completes.
    use hope_analysis::Lint;
    for a in alphabet(1) {
        for b in alphabet(1) {
            for c in alphabet(0) {
                for d in alphabet(0) {
                    let program = Program {
                        code: vec![vec![a, b], vec![c, d]],
                        aid_count: 1,
                    };
                    let lints: Vec<Lint> = Analyzer::new()
                        .errors(&program)
                        .iter()
                        .map(|d| d.lint)
                        .collect();
                    if lints.is_empty() {
                        continue;
                    }
                    for seed in 0..4u64 {
                        let mut m = Machine::new(program.clone());
                        let report = m.run_seeded(500, seed);
                        if lints.contains(&Lint::UnreachableRecv) {
                            assert!(
                                !report.completed,
                                "unreachable-recv but completed:\n{program}"
                            );
                        }
                        if !report.completed {
                            continue;
                        }
                        let stats = m.engine().stats();
                        let rolled = stats.rollback_events > 0;
                        let skipped = (0..program.process_count()).any(|p| {
                            m.history(p)
                                .states()
                                .iter()
                                .any(|s| matches!(s.event, Event::Skipped { .. }))
                        });
                        let speculative = (0..program.process_count())
                            .any(|p| m.engine().is_speculative(m.pid(p)).expect("pid"));
                        if lints.contains(&Lint::LeakedSpeculation) {
                            assert!(
                                speculative || rolled,
                                "leaked-speculation but all definite, no rollback:\n{program}"
                            );
                        }
                        if lints.contains(&Lint::ConsumedReassertion)
                            || lints.contains(&Lint::DoomedFreeOf)
                        {
                            assert!(
                                skipped || rolled,
                                "one-shot violation but no skip/rollback:\n{program}"
                            );
                        }
                    }
                }
            }
        }
    }
}
