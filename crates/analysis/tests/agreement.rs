//! Static-vs-dynamic agreement: every error-severity verdict must agree
//! with actual machine execution.
//!
//! The contract (the crate's zero-false-positive guarantee): if the
//! analyzer emits **any error diagnostic**, then **no schedule** lets the
//! program run to *full finalization* — completion with every process
//! definite and no rollback event, ghost message, or skipped primitive.
//! Contrapositively, any program observed to finalize fully on some
//! schedule must be free of error diagnostics.
//!
//! Checked two ways: exhaustively over every small program in two
//! fixed shapes (all 7⁴ two-process programs of length 2 over one AID, and
//! all 7³ one-process programs of length 3), and over seeded random large
//! programs from [`Program::generate`]. Each program is executed under a
//! round-robin schedule plus several seeded random schedules.

use hope_analysis::{cost, covered_by, Analyzer, RaceDetector, RaceKind};
use hope_core::machine::{Event, Machine};
use hope_core::program::{Program, Stmt};

const SCHEDULE_SEEDS: u64 = 12;

/// Run `program` under one schedule and decide whether the run reached
/// full finalization.
fn pristine_under(program: &Program, seed: Option<u64>, fuel: u64) -> bool {
    let mut m = Machine::new(program.clone());
    let report = match seed {
        None => m.run(fuel),
        Some(s) => m.run_seeded(fuel, s),
    };
    if !report.completed {
        return false;
    }
    let stats = m.engine().stats();
    if stats.rollback_events != 0 || stats.ghosts != 0 {
        return false;
    }
    (0..program.process_count()).all(|p| {
        !m.engine().is_speculative(m.pid(p)).expect("registered pid")
            && m.history(p)
                .states()
                .iter()
                .all(|s| !matches!(s.event, Event::Skipped { .. }))
    })
}

fn pristine_on_some_schedule(program: &Program, fuel: u64) -> bool {
    pristine_under(program, None, fuel)
        || (0..SCHEDULE_SEEDS).any(|s| pristine_under(program, Some(s), fuel))
}

/// The statement alphabet for the exhaustive sweeps: every statement form,
/// one AID, `send` targeting `peer`.
fn alphabet(peer: usize) -> [Stmt; 7] {
    [
        Stmt::Guess(0),
        Stmt::Affirm(0),
        Stmt::Deny(0),
        Stmt::FreeOf(0),
        Stmt::Compute,
        Stmt::Send { to: peer },
        Stmt::Recv,
    ]
}

fn check_agreement(program: &Program, fuel: u64, context: &str) -> (bool, bool) {
    let errors = Analyzer::new().errors(program);
    let pristine = pristine_on_some_schedule(program, fuel);
    assert!(
        errors.is_empty() || !pristine,
        "{context}: static verdict disagrees with execution\n\
         program:\n{program}\nerrors: {errors:?}\n\
         but some schedule ran to full finalization"
    );
    (!errors.is_empty(), pristine)
}

#[test]
fn exhaustive_two_process_agreement() {
    let mut flagged = 0usize;
    let mut pristine_count = 0usize;
    let mut total = 0usize;
    for a in alphabet(1) {
        for b in alphabet(1) {
            for c in alphabet(0) {
                for d in alphabet(0) {
                    let program = Program {
                        code: vec![vec![a, b], vec![c, d]],
                        aid_count: 1,
                    };
                    let (err, pristine) = check_agreement(&program, 500, "two-process exhaustive");
                    flagged += usize::from(err);
                    pristine_count += usize::from(pristine);
                    total += 1;
                }
            }
        }
    }
    assert_eq!(total, 7usize.pow(4));
    // The sweep must exercise both sides of the contract heavily, or the
    // agreement claim would be vacuous.
    assert!(flagged > total / 10, "only {flagged}/{total} flagged");
    assert!(
        pristine_count > total / 10,
        "only {pristine_count}/{total} pristine"
    );
}

#[test]
fn exhaustive_single_process_agreement() {
    // Single process; `send` can only target the process itself, which is
    // the self-send warning's territory — still legal to execute.
    let mut flagged = 0usize;
    let mut pristine_count = 0usize;
    for a in alphabet(0) {
        for b in alphabet(0) {
            for c in alphabet(0) {
                let program = Program {
                    code: vec![vec![a, b, c]],
                    aid_count: 1,
                };
                let (err, pristine) = check_agreement(&program, 500, "single-process exhaustive");
                flagged += usize::from(err);
                pristine_count += usize::from(pristine);
            }
        }
    }
    assert!(flagged > 0 && pristine_count > 0);
}

#[test]
fn generated_large_program_agreement() {
    let mut flagged = 0usize;
    for seed in 0..40u64 {
        let program = Program::generate(seed, 4, 25, 4);
        let (err, _) = check_agreement(&program, 50_000, "generated 4x25");
        flagged += usize::from(err);
    }
    // Random programs re-decide AIDs constantly; most must be flagged.
    assert!(flagged > 20, "only {flagged}/40 generated programs flagged");

    for seed in 100..110u64 {
        let program = Program::generate(seed, 6, 40, 6);
        check_agreement(&program, 100_000, "generated 6x40");
    }
}

/// Run `program` under the round-robin schedule plus every seeded schedule
/// with a [`RaceDetector`] attached, and assert each dynamic race report is
/// predicted by a static diagnostic ([`covered_by`]). Returns per-kind race
/// counts `[decided-aid-reuse, send-after-deny, guess-after-decide]`.
fn check_race_coverage(program: &Program, fuel: u64, context: &str) -> [usize; 3] {
    let diagnostics = Analyzer::new().analyze(program);
    let mut counts = [0usize; 3];
    for seed in std::iter::once(None).chain((0..SCHEDULE_SEEDS).map(Some)) {
        let mut detector = RaceDetector::new();
        let mut m = Machine::new(program.clone());
        match seed {
            None => m.run_observed(fuel, &mut detector),
            Some(s) => m.run_seeded_observed(fuel, s, &mut detector),
        };
        for race in detector.races() {
            counts[match race.kind {
                RaceKind::DecidedAidReuse => 0,
                RaceKind::SendAfterDeny => 1,
                RaceKind::GuessAfterDecide => 2,
            }] += 1;
            assert!(
                covered_by(race, &diagnostics),
                "{context}: dynamic race not predicted statically\n\
                 program:\n{program}\nschedule seed: {seed:?}\n\
                 race: {race:?}\ndiagnostics: {diagnostics:?}"
            );
        }
    }
    counts
}

#[test]
fn exhaustive_dynamic_races_are_statically_covered() {
    // The dynamic half of the agreement contract: on the same exhaustive
    // spaces the blanket test sweeps, every race the runtime detector
    // reports — under every schedule — must be covered by a static
    // warning on the same AID. (The static side may over-approximate; the
    // dynamic side must never surprise it.)
    let mut totals = [0usize; 3];
    for a in alphabet(1) {
        for b in alphabet(1) {
            for c in alphabet(0) {
                for d in alphabet(0) {
                    let program = Program {
                        code: vec![vec![a, b], vec![c, d]],
                        aid_count: 1,
                    };
                    let counts = check_race_coverage(&program, 500, "two-process races");
                    for (t, c) in totals.iter_mut().zip(counts) {
                        *t += c;
                    }
                }
            }
        }
    }
    for a in alphabet(0) {
        for b in alphabet(0) {
            for c in alphabet(0) {
                let program = Program {
                    code: vec![vec![a, b, c]],
                    aid_count: 1,
                };
                let counts = check_race_coverage(&program, 500, "single-process races");
                for (t, c) in totals.iter_mut().zip(counts) {
                    *t += c;
                }
            }
        }
    }
    // Non-vacuity: the corpus must actually trigger every race shape, or
    // the coverage claim proves nothing.
    assert!(
        totals.iter().all(|&t| t > 0),
        "race shapes unexercised: [reuse, ghost, guess-race] = {totals:?}"
    );
}

/// A cascade chain with `relays` relay processes: the origin guesses and
/// forwards its tagged dependence hop by hop; the far end denies.
fn cascade_chain(relays: usize) -> Program {
    let mut code = vec![vec![Stmt::Guess(0), Stmt::Send { to: 1 }]];
    for r in 0..relays {
        code.push(vec![Stmt::Recv, Stmt::Compute, Stmt::Send { to: r + 2 }]);
    }
    code.push(vec![Stmt::Recv, Stmt::Compute, Stmt::Deny(0)]);
    Program::new(code)
}

#[test]
fn cost_rank_correlates_with_measured_rollback_work() {
    // The cost model's damage score is a static prediction of how much
    // work a deny destroys. Check it against the machine: on cascade
    // chains of growing length, predicted damage and measured rollback
    // work (intervals discarded when the far-end deny lands) must rank
    // the programs identically — and both must grow strictly.
    let mut predicted = Vec::new();
    let mut measured = Vec::new();
    for relays in [0usize, 1, 2, 4] {
        let program = cascade_chain(relays);
        let costs = cost::rank(&program);
        assert_eq!(costs.len(), 1, "one speculation per chain");
        predicted.push(costs[0].damage);

        // Round-robin lets the whole chain go speculative before the
        // deny lands, so the measured rollback reflects the full cascade.
        let mut m = Machine::new(program.clone());
        let report = m.run(10_000);
        assert!(report.completed, "chain with {relays} relays must finish");
        let stats = m.engine().stats();
        assert!(stats.rollback_events > 0, "the deny must trigger rollback");
        measured.push(stats.rolled_back_intervals + stats.ghosts);
    }
    assert!(
        predicted.windows(2).all(|w| w[0] < w[1]),
        "predicted damage must grow with chain length: {predicted:?}"
    );
    assert!(
        measured.windows(2).all(|w| w[0] < w[1]),
        "measured rollback work must grow with chain length: {measured:?}"
    );
    // Same ranking both ways: the most-damaging prediction is the
    // most-damaging measurement.
    let rank_of = |xs: &[u64]| {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(xs[i]));
        idx
    };
    assert_eq!(rank_of(&predicted), rank_of(&measured));
}

#[test]
fn per_lint_dynamic_claims_hold_on_the_exhaustive_corpus() {
    // Sharper per-lint claims than the blanket agreement, over the
    // two-process corpus:
    // * leaked-speculation: every *completed* run leaves some process
    //   speculative or rolled back;
    // * consumed-reassertion / doomed-free-of: every completed run has a
    //   skip or a rollback;
    // * unreachable-recv: no run completes.
    use hope_analysis::Lint;
    for a in alphabet(1) {
        for b in alphabet(1) {
            for c in alphabet(0) {
                for d in alphabet(0) {
                    let program = Program {
                        code: vec![vec![a, b], vec![c, d]],
                        aid_count: 1,
                    };
                    let lints: Vec<Lint> = Analyzer::new()
                        .errors(&program)
                        .iter()
                        .map(|d| d.lint)
                        .collect();
                    if lints.is_empty() {
                        continue;
                    }
                    for seed in 0..4u64 {
                        let mut m = Machine::new(program.clone());
                        let report = m.run_seeded(500, seed);
                        if lints.contains(&Lint::UnreachableRecv) {
                            assert!(
                                !report.completed,
                                "unreachable-recv but completed:\n{program}"
                            );
                        }
                        if !report.completed {
                            continue;
                        }
                        let stats = m.engine().stats();
                        let rolled = stats.rollback_events > 0;
                        let skipped = (0..program.process_count()).any(|p| {
                            m.history(p)
                                .states()
                                .iter()
                                .any(|s| matches!(s.event, Event::Skipped { .. }))
                        });
                        let speculative = (0..program.process_count())
                            .any(|p| m.engine().is_speculative(m.pid(p)).expect("pid"));
                        if lints.contains(&Lint::LeakedSpeculation) {
                            assert!(
                                speculative || rolled,
                                "leaked-speculation but all definite, no rollback:\n{program}"
                            );
                        }
                        if lints.contains(&Lint::ConsumedReassertion)
                            || lints.contains(&Lint::DoomedFreeOf)
                        {
                            assert!(
                                skipped || rolled,
                                "one-shot violation but no skip/rollback:\n{program}"
                            );
                        }
                    }
                }
            }
        }
    }
}
