//! Golden tests: one trigger and one near-miss program per lint, with the
//! exact rendered output pinned, plus a dynamic demonstration that each
//! error trigger really is doomed on the machine.

use hope_analysis::{render_json, render_text, Analyzer, Lint, Severity};
use hope_core::machine::Machine;
use hope_core::program::{Program, Stmt};

/// `true` when `program` ran to full finalization under the given seeded
/// schedule: completed with every process definite and no rollback, ghost,
/// or skipped primitive.
fn pristine_under(program: &Program, seed: Option<u64>) -> bool {
    let mut m = Machine::new(program.clone());
    let report = match seed {
        None => m.run(100_000),
        Some(s) => m.run_seeded(100_000, s),
    };
    if !report.completed {
        return false;
    }
    let stats = m.engine().stats();
    if stats.rollback_events != 0 || stats.ghosts != 0 {
        return false;
    }
    (0..program.process_count()).all(|p| {
        !m.engine().is_speculative(m.pid(p)).expect("machine pid")
            && m.history(p)
                .states()
                .iter()
                .all(|s| !matches!(s.event, hope_core::machine::Event::Skipped { .. }))
    })
}

fn never_pristine(program: &Program) {
    assert!(
        !pristine_under(program, None),
        "round-robin run was pristine"
    );
    for seed in 0..16 {
        assert!(
            !pristine_under(program, Some(seed)),
            "seeded schedule {seed} was pristine"
        );
    }
}

fn some_schedule_pristine(program: &Program) {
    let found = pristine_under(program, None) || (0..16).any(|s| pristine_under(program, Some(s)));
    assert!(found, "no schedule ran to full finalization");
}

#[test]
fn leaked_speculation_trigger_and_near_miss() {
    let trigger = Program::new(vec![
        vec![Stmt::Guess(0), Stmt::Compute],
        vec![Stmt::Compute],
    ]);
    let ds = Analyzer::new().analyze(&trigger);
    assert_eq!(
        render_text(&ds),
        "error[leaked-speculation] P0:0: x0 is guessed here but no affirm/deny/free_of of x0 \
         exists anywhere; the guessing process can never become definite\n\
         1 error, 0 warnings\n"
    );
    never_pristine(&trigger);

    let near_miss = Program::new(vec![
        vec![Stmt::Guess(0), Stmt::Compute],
        vec![Stmt::Affirm(0)],
    ]);
    assert!(Analyzer::new().analyze(&near_miss).is_empty());
    some_schedule_pristine(&near_miss);
}

#[test]
fn doomed_free_of_trigger_and_near_miss() {
    let trigger = Program::new(vec![vec![Stmt::Guess(0), Stmt::Compute, Stmt::FreeOf(0)]]);
    let ds = Analyzer::new().analyze(&trigger);
    assert_eq!(ds.len(), 1);
    assert_eq!(
        ds[0].to_string(),
        "error[doomed-free-of] P0:2: free_of(x0) follows guess(x0) at P0:0: the asserter \
         depends on x0, so this is a self-deny (Equation 19) or a skipped re-use on every \
         schedule"
    );
    never_pristine(&trigger);

    // Near miss: the free_of is issued by a *different* process, which is
    // exactly Equation 17/18's legal use.
    let near_miss = Program::new(vec![
        vec![Stmt::Guess(0), Stmt::Compute],
        vec![Stmt::FreeOf(0)],
    ]);
    assert!(Analyzer::new().analyze(&near_miss).is_empty());
    some_schedule_pristine(&near_miss);
}

#[test]
fn consumed_reassertion_trigger_and_near_miss() {
    let trigger = Program::new(vec![
        vec![Stmt::Guess(0), Stmt::Compute],
        vec![Stmt::Affirm(0), Stmt::Deny(0)],
    ]);
    let ds = Analyzer::new().analyze(&trigger);
    assert_eq!(ds.len(), 1);
    assert_eq!(
        ds[0].to_string(),
        "error[consumed-reassertion] P1:1: x0 is decided 2 times (affirm(x0) at P1:0, \
         deny(x0) at P1:1); affirm/deny/free_of are one-shot, so all but one use is skipped \
         or undone on every schedule"
    );
    never_pristine(&trigger);

    // Near miss: the two deciders decide *different* AIDs.
    let near_miss = Program::new(vec![
        vec![Stmt::Guess(0), Stmt::Guess(1)],
        vec![Stmt::Affirm(0), Stmt::Affirm(1)],
    ]);
    assert!(Analyzer::new().analyze(&near_miss).is_empty());
    some_schedule_pristine(&near_miss);
}

#[test]
fn unreachable_recv_trigger_and_near_miss() {
    let trigger = Program::new(vec![
        vec![Stmt::Recv, Stmt::Recv],
        vec![Stmt::Send { to: 0 }],
    ]);
    let ds = Analyzer::new().analyze(&trigger);
    assert_eq!(ds.len(), 1);
    assert_eq!(
        ds[0].to_string(),
        "error[unreachable-recv] P0:1: process P0 executes 2 recvs but the whole program \
         sends it at most 1 message; this recv can never be satisfied"
    );
    never_pristine(&trigger);

    let near_miss = Program::new(vec![
        vec![Stmt::Recv, Stmt::Recv],
        vec![Stmt::Send { to: 0 }, Stmt::Send { to: 0 }],
    ]);
    assert!(Analyzer::new().analyze(&near_miss).is_empty());
    some_schedule_pristine(&near_miss);
}

#[test]
fn invalid_target_trigger_and_near_miss() {
    // Out-of-range send and AID: two errors. Not executable (the machine
    // would panic), so there is no dynamic leg here.
    let trigger = Program {
        code: vec![vec![Stmt::Send { to: 3 }, Stmt::Guess(5)]],
        aid_count: 1,
    };
    let ds = Analyzer::new().analyze(&trigger);
    let rendered: Vec<String> = ds.iter().map(|d| d.to_string()).collect();
    assert_eq!(
        rendered,
        vec![
            "error[invalid-target] P0:0: send targets P3 but the program has only 1 processes"
                .to_string(),
            "error[invalid-target] P0:1: statement names x5 but the program declares only 1 AIDs"
                .to_string(),
        ]
    );

    // Self-send: a warning, and genuinely runnable.
    let self_send = Program::new(vec![vec![Stmt::Send { to: 0 }, Stmt::Recv]]);
    let ds = Analyzer::new().analyze(&self_send);
    assert_eq!(ds.len(), 1);
    assert_eq!(ds[0].severity, Severity::Warning);
    assert_eq!(
        ds[0].to_string(),
        "warning[invalid-target] P0:0: process P0 sends to itself; the message only re-enters \
         its own mailbox"
    );
    some_schedule_pristine(&self_send);

    let near_miss = Program::new(vec![vec![Stmt::Send { to: 1 }], vec![Stmt::Recv]]);
    assert!(Analyzer::new().analyze(&near_miss).is_empty());
    some_schedule_pristine(&near_miss);
}

#[test]
fn cascade_depth_trigger_and_near_miss() {
    // P0 guesses and fans the dependence out to P1 and P2 (through a relay):
    // dependents(x0) = {P0, P1, P2} ≥ default threshold 3.
    let trigger = Program::new(vec![
        vec![Stmt::Guess(0), Stmt::Send { to: 1 }, Stmt::Affirm(0)],
        vec![Stmt::Recv, Stmt::Send { to: 2 }],
        vec![Stmt::Recv],
    ]);
    let ds = Analyzer::new().analyze(&trigger);
    assert_eq!(ds.len(), 1);
    assert_eq!(
        ds[0].to_string(),
        "warning[cascade-depth] P0:0: a deny of x0 may cascade a rollback across 3 processes \
         (P0, P1, P2); consider affirming earlier or narrowing the speculation"
    );
    // Warning only: the program still validates and can run cleanly.
    some_schedule_pristine(&trigger);

    // Near miss: affirm before the send — the tag is empty, nothing fans out.
    let near_miss = Program::new(vec![
        vec![Stmt::Guess(0), Stmt::Affirm(0), Stmt::Send { to: 1 }],
        vec![Stmt::Recv, Stmt::Send { to: 2 }],
        vec![Stmt::Recv],
    ]);
    assert!(Analyzer::new().analyze(&near_miss).is_empty());
    some_schedule_pristine(&near_miss);
}

#[test]
fn six_original_lints_on_one_program_with_golden_json() {
    // One crafted program triggering each of the original six lints at
    // once (the flow-race lints added later need shapes — foreign deniers,
    // tagged sends — this program deliberately avoids, keeping the golden
    // JSON stable).
    let program = Program {
        code: vec![
            // P0: leaked guess of x1, doomed free_of of x0, self-send.
            vec![
                Stmt::Guess(0),
                Stmt::Guess(1),
                Stmt::FreeOf(0),
                Stmt::Send { to: 0 },
                Stmt::Recv,
            ],
            // P1: double-decide of x2, out-of-range send, surplus recv.
            vec![
                Stmt::Affirm(2),
                Stmt::Deny(2),
                Stmt::Send { to: 9 },
                Stmt::Recv,
            ],
            // P2+P3: cascade fan-out of x3 (threshold 2 below).
            vec![Stmt::Guess(3), Stmt::Send { to: 3 }, Stmt::Affirm(3)],
            vec![Stmt::Recv],
        ],
        aid_count: 4,
    };
    let analyzer = Analyzer::new().with_cascade_threshold(2);
    let ds = analyzer.analyze(&program);
    let fired: Vec<Lint> = ds.iter().map(|d| d.lint).collect();
    let six = [
        Lint::InvalidTarget,
        Lint::LeakedSpeculation,
        Lint::DoomedFreeOf,
        Lint::ConsumedReassertion,
        Lint::UnreachableRecv,
        Lint::CascadeDepth,
    ];
    for lint in six {
        assert!(fired.contains(&lint), "{lint} did not fire");
    }

    let json = render_json(&ds);
    // Diagnostics are sorted by (proc, stmt, lint).
    let expected = r#"[
  {"lint":"leaked-speculation","severity":"error","proc":0,"stmt":1,"message":"x1 is guessed here but no affirm/deny/free_of of x1 exists anywhere; the guessing process can never become definite"},
  {"lint":"doomed-free-of","severity":"error","proc":0,"stmt":2,"message":"free_of(x0) follows guess(x0) at P0:0: the asserter depends on x0, so this is a self-deny (Equation 19) or a skipped re-use on every schedule"},
  {"lint":"invalid-target","severity":"warning","proc":0,"stmt":3,"message":"process P0 sends to itself; the message only re-enters its own mailbox"},
  {"lint":"consumed-reassertion","severity":"error","proc":1,"stmt":1,"message":"x2 is decided 2 times (affirm(x2) at P1:0, deny(x2) at P1:1); affirm/deny/free_of are one-shot, so all but one use is skipped or undone on every schedule"},
  {"lint":"invalid-target","severity":"error","proc":1,"stmt":2,"message":"send targets P9 but the program has only 4 processes"},
  {"lint":"unreachable-recv","severity":"error","proc":1,"stmt":3,"message":"process P1 executes 1 recv but the whole program sends it at most 0 messages; this recv can never be satisfied"},
  {"lint":"cascade-depth","severity":"warning","proc":2,"stmt":0,"message":"a deny of x3 may cascade a rollback across 2 processes (P2, P3); consider affirming earlier or narrowing the speculation"}
]
"#;
    assert_eq!(json, expected);
}

#[test]
fn validator_rejects_triggers_and_admits_near_misses() {
    let doomed = Program::new(vec![vec![Stmt::Guess(0), Stmt::FreeOf(0)]]);
    let err = Machine::new_validated(doomed, &Analyzer::default()).unwrap_err();
    match err {
        hope_core::Error::ProgramRejected { reasons } => {
            assert_eq!(reasons.len(), 1);
            assert!(reasons[0].contains("doomed-free-of"));
        }
        other => panic!("expected ProgramRejected, got {other:?}"),
    }

    let fine = Program::new(vec![
        vec![Stmt::Guess(0), Stmt::Compute],
        vec![Stmt::Affirm(0)],
    ]);
    let mut machine = Machine::new_validated(fine, &Analyzer::default()).unwrap();
    assert!(machine.run(1_000).completed);
}
