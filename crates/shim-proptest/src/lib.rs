//! Offline stand-in for [`proptest`](https://docs.rs/proptest), covering
//! exactly the API surface this workspace's property suites use.
//!
//! The container this repository builds in has no registry access, so the
//! real crate cannot be fetched. Rather than disabling the property suites,
//! this shim turns every [`proptest!`] block into a **deterministic
//! seeded loop**: each test derives a stable seed from its own name, draws
//! `cases` inputs from its strategies with a SplitMix64 generator, and runs
//! the body on each. Failures are reproducible by construction (no
//! persistence files needed) — the trade-off is that there is no shrinking:
//! a failing case reports its case number and seed instead of a minimized
//! input.
//!
//! Supported surface: [`Strategy`] with [`prop_map`](Strategy::prop_map)
//! and [`boxed`](Strategy::boxed), integer/float range strategies, tuple
//! strategies, [`collection::vec`] / [`collection::btree_set`],
//! [`prop_oneof!`], [`prop_assert!`] / [`prop_assert_eq!`], and
//! [`test_runner::ProptestConfig::with_cases`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Strategies for generating collections.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy};
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Strategy producing `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet<S::Value>` with a cardinality drawn
    /// from `size` (best-effort: duplicates are retried a bounded number of
    /// times, so a small value domain may yield a smaller set).
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate ordered sets of values from `element`, sized within `size`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < n && attempts < 64 * (n + 1) {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// The conventional glob-import module: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declare deterministic property tests.
///
/// Accepts the real proptest's block syntax: an optional
/// `#![proptest_config(...)]` inner attribute followed by `#[test]`
/// functions whose arguments are `name in strategy` bindings. Each function
/// becomes a plain `#[test]` running `cases` seeded iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Weighted choice between strategies producing the same value type.
///
/// `prop_oneof![3 => a, 1 => b]` picks `a` three times as often as `b`;
/// the unweighted form gives every arm weight 1.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert a condition inside a property body (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property body (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, u64)> {
        (0usize..10, 5u64..100).prop_map(|(a, b)| (a, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in 1u32..=9, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=9).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(0u64..5, 2..6),
            s in crate::collection::btree_set(0u32..100, 1..4),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!((1..4).contains(&s.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn mapped_tuples_compose(p in pair()) {
            prop_assert!(p.0 < 10 && (5..100).contains(&p.1));
        }

        #[test]
        fn oneof_hits_every_arm(choices in crate::collection::vec(
            prop_oneof![3 => 0usize..1, 1 => 1usize..2], 64..65,
        )) {
            prop_assert!(choices.iter().all(|&c| c < 2));
            // With weight 3:1 over 64 draws, both arms appear (deterministic
            // seed makes this a fixed, checked fact rather than a flake).
            prop_assert!(choices.contains(&0));
            prop_assert!(choices.contains(&1));
        }
    }

    #[test]
    fn seeded_runs_are_deterministic() {
        let strat = crate::collection::vec(0u64..1000, 0..20);
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..32 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }

    #[test]
    fn just_yields_its_value() {
        let mut rng = TestRng::from_name("just");
        assert_eq!(Just(7).sample(&mut rng), 7);
    }
}
