//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type from a seeded generator.
///
/// Unlike real proptest there is no value *tree* (no shrinking): a strategy
/// is just a deterministic sampler.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Erase the concrete strategy type (needed by [`crate::prop_oneof!`],
    /// whose arms have heterogeneous types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// Weighted union of same-valued strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("arms", &self.arms.len())
            .field("total", &self.total)
            .finish()
    }
}

impl<T> Union<T> {
    /// Build a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or every weight is zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return strat.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + (rng.below(span) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64) + 1;
                lo + (rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// The size bound accepted by [`crate::collection`] strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl SizeRange {
    pub(crate) fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo + 1 >= self.hi {
            self.lo
        } else {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}
