//! Test configuration and the deterministic generator behind the shim.

/// Configuration for a [`crate::proptest!`] block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of seeded cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` iterations per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// SplitMix64 generator seeding every property deterministically.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an explicit value.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed stably from a test's fully qualified name (FNV-1a hash), so
    /// every test draws an independent, reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Debiased multiply-shift (Lemire).
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_seeding_is_stable_and_distinct() {
        let a = TestRng::from_name("alpha").next_u64();
        let a2 = TestRng::from_name("alpha").next_u64();
        let b = TestRng::from_name("beta").next_u64();
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_seed(5);
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
    }
}
