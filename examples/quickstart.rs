//! Quickstart: the smallest useful HOPE program.
//!
//! A worker wants to append a record to a remote ledger, but appending is
//! only legal if the ledger's running total stays under a limit — a check
//! only the ledger can make, a round trip away. Pessimistically the worker
//! idles for the whole round trip; with HOPE it *guesses* the append will
//! be accepted, keeps computing, and is transparently rolled back (taking
//! the slow path instead) if the ledger refuses.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hope::runtime::{SimConfig, Simulation, Value};
use hope::sim::{LatencyModel, Topology, VirtualDuration};
use hope::ProcessId;

fn ms(v: u64) -> VirtualDuration {
    VirtualDuration::from_millis(v)
}

fn run(amount: i64) -> hope::runtime::RunReport {
    // A 20ms round trip between worker and ledger.
    let topo = Topology::uniform(LatencyModel::Fixed(ms(10)));
    let mut sim = Simulation::new(SimConfig::with_seed(7).with_topology(topo));
    let ledger = ProcessId(1);

    sim.spawn("worker", move |ctx| {
        // Name the assumption: "the ledger will accept my append".
        let accepted = ctx.aid_init()?;
        // Ship the request (and the assumption's name) before guessing, so
        // the message carries no speculative dependence.
        ctx.send(
            ledger,
            Value::List(vec![
                Value::Int(accepted.index() as i64),
                Value::Int(amount),
            ]),
        )?;
        if ctx.guess(accepted)? {
            // Optimistic path: act as if the append succeeded. All of this
            // computes *during* the round trip we used to wait out.
            ctx.compute(ms(5))?;
            ctx.output(format!("appended {amount}, continued immediately"))?;
        } else {
            // We were rolled back: the ledger said no. Take the slow path.
            ctx.output(format!("append of {amount} refused; queued for review"))?;
        }
        Ok(())
    });

    sim.spawn("ledger", move |ctx| {
        let msg = ctx.recv()?;
        let items = msg.payload.expect_list();
        let aid = hope::AidId::from_index(items[0].expect_int() as u64);
        let amount = items[1].expect_int();
        ctx.compute(ms(1))?; // the actual bookkeeping
        if amount <= 100 {
            ctx.affirm(aid)?; // the guess was right
        } else {
            ctx.deny(aid)?; // refuse: every dependent computation unwinds
        }
        Ok(())
    });

    sim.run()
}

fn main() {
    let accepted = run(42);
    println!("--- amount within limit ---");
    for line in accepted.output_lines() {
        println!("  {line}");
    }
    println!(
        "  (rollbacks: {}, finished at {})",
        accepted.stats().rollback_events,
        accepted.end_time()
    );

    let refused = run(4242);
    println!("--- amount over limit ---");
    for line in refused.output_lines() {
        println!("  {line}");
    }
    println!(
        "  (rollbacks: {}, finished at {})",
        refused.stats().rollback_events,
        refused.end_time()
    );

    assert_eq!(
        accepted.output_lines(),
        vec!["appended 42, continued immediately"]
    );
    assert_eq!(
        refused.output_lines(),
        vec!["append of 4242 refused; queued for review"]
    );
    assert_eq!(refused.stats().rollback_events, 1);
}
