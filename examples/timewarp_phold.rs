//! Time Warp on HOPE (§2's subsumption claim): PHOLD across 8 logical
//! processes, against the sequential baseline.
//!
//! Shows optimistic parallel discrete-event simulation built from nothing
//! but `guess`/`deny` and tagged messages: stragglers trigger rollback,
//! ghost filtering plays the role of anti-messages, and the substrate
//! completion time beats single-CPU event processing.
//!
//! Run with:
//!
//! ```text
//! cargo run --example timewarp_phold
//! ```

use hope::sim::{Topology, VirtualDuration};
use hope::timewarp::phold::{run_phold, run_sequential};

fn main() {
    let service = VirtualDuration::from_micros(500);
    let (mean_delay, horizon, seed) = (10, 120, 2026);

    println!("PHOLD: horizon {horizon} ticks, service {service}, seed {seed}\n");
    println!("| LPs | sequential | Time Warp | speedup | handled | rollbacks | ghosts |");
    println!("|-----|------------|-----------|---------|---------|-----------|--------|");
    for n_lps in [2, 4, 8] {
        let seq = run_sequential(n_lps, service, mean_delay, horizon, seed);
        let tw = run_phold(n_lps, Topology::local(), service, mean_delay, horizon, seed);
        assert!(tw.report.errors().is_empty(), "{:?}", tw.report.errors());
        let seq_ms = seq.total_time.as_millis_f64();
        let tw_ms = tw.report.end_time().as_millis_f64();
        println!(
            "| {n_lps:>3} | {seq_ms:>8.2}ms | {tw_ms:>7.2}ms | {:>6.2}x | {:>7} | {:>9} | {:>6} |",
            seq_ms / tw_ms,
            tw.handled,
            tw.rollbacks,
            tw.report.stats().ghosts_dropped,
        );
    }
    println!();
    println!("finding (E6): in this fully symmetric system every LP is perpetually");
    println!("speculative, so by Lemma 6.3 nothing ever finalizes — Time Warp's");
    println!("fossil collection (GVT) is an *external, definite* observer that pure");
    println!("HOPE semantics cannot express from within. HOPE subsumes Time Warp's");
    println!("rollback and anti-messages; commitment needs the environment's help.");
}
