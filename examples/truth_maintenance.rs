//! Distributed truth maintenance (§7 future work, ref \[12\]): dependency-
//! directed backtracking as HOPE rollback.
//!
//! Two reasoners build beliefs from assumptions and gossip derived facts;
//! a judge polices the nogoods. When reasoner 1's assumption derives a
//! fact contradicting reasoner 0's, the judge denies the culpable
//! assumption and HOPE retracts every consequence on every reasoner —
//! Doyle's TMS, with the justification network maintained by the engine.
//!
//! Run with:
//!
//! ```text
//! cargo run --example truth_maintenance
//! ```

use hope::sim::{LatencyModel, Topology, VirtualDuration};
use hope::tms::{run_tms, sequential_oracle, KnowledgeBase};

fn main() {
    // A little diagnostic world:
    //   1 = "pump is on"            2 = "valve is open"
    //   3 = "pressure sensor high"  4 = "pump is off"
    //   10 = "flow expected"  11 = "tank filling"  12 = "tank draining"
    // Rules: pump∧valve ⇒ flow; flow ⇒ filling; sensor-high ⇒ draining.
    // Nogoods: a tank cannot fill and drain at once; the pump cannot be
    // both on and off.
    let kb = KnowledgeBase::new(
        &[(&[1, 2], 10), (&[10], 11), (&[3], 12)],
        &[&[11, 12], &[1, 4]],
    );
    let topo = Topology::uniform(LatencyModel::Fixed(VirtualDuration::from_millis(1)));

    println!("reasoner 0 assumes: pump-on(1), valve-open(2)");
    println!("reasoner 1 assumes: sensor-high(3)\n");
    let out = run_tms(&kb, &[vec![1, 2], vec![3]], topo, 5);
    assert!(out.report.errors().is_empty(), "{}", out.report);

    println!("judge's surviving assumptions: {:?}", out.live);
    for (i, b) in out.beliefs.iter().enumerate() {
        println!("reasoner {i} committed beliefs: {b:?}");
    }
    println!(
        "(rollbacks: {}, ghost facts retracted in flight: {})",
        out.report.stats().rollback_events,
        out.report.stats().ghosts_dropped
    );

    // The committed world is consistent.
    let closed = kb.close(&out.live);
    assert!(kb.violated(&closed).is_none());
    for b in &out.beliefs {
        assert!(kb.violated(b).is_none());
    }
    assert!(out.report.stats().rollback_events > 0);

    // Compare with the classical sequential TMS on one global order.
    let oracle = sequential_oracle(&kb, &[1, 2, 3]);
    println!("\nsequential oracle on order [1,2,3] keeps: {oracle:?}");
    println!("(distributed confirmation order may differ; both are consistent)");
}
