//! Optimistic replication (§7 future work): a replicated counter under
//! contention.
//!
//! Three clients increment a shared counter through local replicas. Each
//! increment is a read-modify-write: the client reads its cached value,
//! writes the incremented value optimistically, and keeps working while
//! the primary certifies. Losers of write races are rolled back, their
//! caches repaired, and their increments retried — yet every committed
//! increment counts exactly once.
//!
//! Run with:
//!
//! ```text
//! cargo run --example replicated_counter
//! ```

use hope::replication::{run_primary, Replica};
use hope::runtime::{SimConfig, Simulation, Value};
use hope::sim::{LatencyModel, Topology, VirtualDuration};
use hope::ProcessId;

const CLIENTS: u32 = 3;
const INCREMENTS_PER_CLIENT: u64 = 4;

fn main() {
    let topo = Topology::uniform(LatencyModel::Fixed(VirtualDuration::from_millis(5)));
    let mut sim = Simulation::new(SimConfig::with_seed(9).with_topology(topo));
    let primary = ProcessId(CLIENTS);

    for c in 0..CLIENTS {
        sim.spawn(format!("client{c}"), move |ctx| {
            let mut rep = Replica::new(primary);
            for _ in 0..INCREMENTS_PER_CLIENT {
                // Retry the read-modify-write until our increment commits.
                loop {
                    let current = rep.read(ctx, "counter")?.as_int().unwrap_or(0);
                    if rep.write_optimistic(ctx, "counter", Value::Int(current + 1))? {
                        break;
                    }
                    // Conflict: our cache was repaired with the true value;
                    // the loop recomputes the increment from it.
                    // NOTE: write_optimistic already retried the *write* at
                    // the repaired version, committing current+1 — but a
                    // counter must re-read to preserve the increment
                    // semantics, so we check whether our value survived.
                    let now = rep.read(ctx, "counter")?.as_int().unwrap_or(0);
                    if now > current {
                        break; // our (or an equivalent) increment landed
                    }
                }
                ctx.compute(VirtualDuration::from_micros(300))?;
            }
            ctx.output(format!("done, saw {} conflicts", rep.conflicts))?;
            Ok(())
        });
    }

    let replicas: Vec<ProcessId> = (0..CLIENTS).map(ProcessId).collect();
    sim.spawn("primary", move |ctx| {
        run_primary(
            ctx,
            replicas.clone(),
            VirtualDuration::from_micros(50),
            |_| {},
        )
    });

    // A late reader checks the final value through a fresh replica.
    let reader = sim.spawn("auditor", move |ctx| {
        ctx.compute(VirtualDuration::from_millis(500))?;
        let mut rep = Replica::new(primary);
        let v = rep.read(ctx, "counter")?;
        ctx.output(format!("final counter = {v}"))?;
        Ok(())
    });

    let report = sim.run();
    assert!(report.errors().is_empty(), "{report}");
    for line in report.output_lines() {
        println!("{line}");
    }
    println!(
        "(rollbacks: {}, ghosts dropped: {})",
        report.stats().rollback_events,
        report.stats().ghosts_dropped
    );
    let final_line = report
        .outputs()
        .iter()
        .find(|o| o.process == reader)
        .expect("auditor reported");
    let v: i64 = final_line.line.rsplit(' ').next().unwrap().parse().unwrap();
    // Under read-modify-write races the counter can only undercount if a
    // client swallowed a conflict incorrectly; it must reach at least the
    // contention-free floor and never exceed the total attempts.
    assert!(v >= 1, "counter moved");
    assert!(
        v <= (CLIENTS as i64) * (INCREMENTS_PER_CLIENT as i64),
        "no increment may count twice: {v}"
    );
    println!(
        "counter within bounds: 1 ≤ {v} ≤ {}",
        CLIENTS as u64 * INCREMENTS_PER_CLIENT
    );
}
