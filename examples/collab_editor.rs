//! Lock-free co-operative editing (§7 future work, ref \[5\]): four people
//! typing into one document at once, nobody ever waiting for a lock.
//!
//! Conflicts — two edits sequenced against the same version — are repaired
//! by rollback and positional rebase, and every replica converges to the
//! authoritative text.
//!
//! Run with:
//!
//! ```text
//! cargo run --example collab_editor
//! ```

use hope::coedit::run_session;
use hope::sim::{LatencyModel, Topology, VirtualDuration};

fn main() {
    let topo = Topology::uniform(LatencyModel::Fixed(VirtualDuration::from_millis(4)));
    let out = run_session(4, 6, topo, 2026, 0.85);
    assert!(out.report.errors().is_empty(), "{}", out.report);

    println!("four editors × six edits, 8ms RTT, zero locks\n");
    println!("authoritative: {:?}", out.authoritative);
    for (i, r) in out.replicas.iter().enumerate() {
        println!("editor {i} sees: {r:?}");
    }
    println!(
        "\nconflict rollbacks: {}  ghosts dropped: {}  converged: {}",
        out.report.stats().rollback_events,
        out.report.stats().ghosts_dropped,
        out.converged()
    );
    assert!(out.converged());
}
