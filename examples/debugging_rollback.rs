//! Debugging an optimistic program: execution traces and dependency
//! graphs.
//!
//! Rollback cascades can be bewildering; this example shows the three
//! tools the reproduction provides. `SimConfig::traced()` records every
//! primitive, delivery, ghost and rollback with virtual timestamps;
//! `SimConfig::detect_races(true)` runs the vector-clock race detector
//! online and surfaces its findings through `RunReport::races`;
//! `hope::core::trace::render_dependency_graph` exports the engine's live
//! IDO/DOM graph as Graphviz DOT; and `SimConfig::with_faults` injects
//! deterministic network/crash faults whose effects show up in
//! `RunReport::faults`.
//!
//! Run with:
//!
//! ```text
//! cargo run --example debugging_rollback
//! ```

use hope::core::trace::render_dependency_graph;
use hope::core::{Checkpoint, Engine};
use hope::runtime::{FaultPlan, SimConfig, Simulation, Value};
use hope::sim::VirtualDuration;
use hope::{AidId, ProcessId};

fn main() {
    // --- Part 1: a traced run with a rollback cascade -------------------
    let mut sim = Simulation::new(SimConfig::with_seed(7).traced().detect_races(true));
    let relay = ProcessId(1);
    let judge = ProcessId(2);
    sim.spawn("origin", move |ctx| {
        let x = ctx.aid_init()?;
        ctx.send(judge, Value::Int(x.index() as i64))?;
        if ctx.guess(x)? {
            ctx.send(relay, Value::Str("speculative hello".into()))?;
            ctx.output("origin: took the fast path")?;
        } else {
            ctx.output("origin: took the slow path")?;
        }
        Ok(())
    });
    sim.spawn("relay", |ctx| {
        let m = ctx.recv()?;
        ctx.output(format!("relay saw: {}", m.payload))?;
        Ok(())
    });
    sim.spawn("judge", |ctx| {
        let m = ctx.recv()?;
        let aid = AidId::from_index(m.payload.expect_int() as u64);
        ctx.compute(VirtualDuration::from_millis(1))?;
        ctx.deny(aid)?; // refute the assumption: cascade ensues
        Ok(())
    });
    let report = sim.run();

    println!("=== execution trace ===");
    for line in report.trace() {
        println!("  {line}");
    }
    println!("\ncommitted output: {:?}", report.output_lines());
    assert_eq!(report.output_lines(), vec!["origin: took the slow path"]);
    assert!(report.trace().iter().any(|l| l.contains("ROLLBACK")));
    assert!(report.trace().iter().any(|l| l.contains("ghost")));

    println!("\n=== race detector findings ===");
    for race in report.races() {
        println!("  [{}] {}", race.kind.name(), race.detail);
    }
    // The speculative hello was condemned as a ghost by the judge's deny:
    // the detector charges a send-after-deny race to the sender.
    assert!(report
        .races()
        .iter()
        .any(|r| r.kind == hope::runtime::RaceKind::SendAfterDeny));

    // --- Part 2: a dependency graph snapshot ----------------------------
    let mut engine = Engine::new();
    let p = engine.register_process();
    let q = engine.register_process();
    let part_page = engine.aid_init(p);
    let order = engine.aid_init(p);
    engine.guess(p, &[part_page], Checkpoint(0)).unwrap();
    engine.guess(p, &[order], Checkpoint(1)).unwrap();
    let tag = engine.dependence_tag(p).unwrap();
    engine.implicit_guess(q, &tag, Checkpoint(0)).unwrap();

    println!("\n=== dependency graph (Graphviz DOT) ===");
    let dot = render_dependency_graph(&engine);
    println!("{dot}");
    assert!(dot.contains("digraph hope"));
    println!("(pipe this into `dot -Tsvg` to see the IDO edges)");

    // --- Part 3: deterministic fault injection --------------------------
    // A lossy link forces `send_reliable` into its timeout/deny/retry
    // loop; `RunReport::faults` itemises everything the plan injected and
    // everything the protocol did to ride it out.
    let plan = FaultPlan::new(42).drop_rate(0.3);
    let mut sim = Simulation::new(SimConfig::with_seed(7).with_faults(plan));
    let receiver = ProcessId(1);
    sim.spawn("sender", move |ctx| {
        for i in 0..5i64 {
            ctx.send_reliable(receiver, Value::Int(i))?;
        }
        ctx.output("sender: all five delivered")?;
        Ok(())
    });
    sim.spawn("receiver", |ctx| {
        for expected in 0..5i64 {
            ctx.recv_matching(move |m| m.payload == Value::Int(expected))?;
        }
        Ok(())
    });
    let report = sim.run();
    let f = &report.stats().faults;
    println!("\n=== fault counters under a 30% lossy link ===");
    println!(
        "  drops: {}, retries: {}, timeout denies: {}",
        f.drops, f.retries, f.timeout_denies
    );
    assert_eq!(report.output_lines(), vec!["sender: all five delivered"]);
    assert!(f.drops > 0 && f.retries > 0);
}
