//! Optimistic lock acquisition — §1's "quite obvious" example of new
//! concurrency: "an optimistic assumption that a concurrency lock will be
//! granted".
//!
//! Two workers race for a lock held by a remote lock manager. Each sends
//! its request, *guesses* the grant, and starts the critical-section work
//! immediately. The manager grants the first request and denies the
//! second; the loser is rolled back — its speculative critical-section
//! work and outputs vanish — and takes the wait-and-retry path. The lock's
//! mutual exclusion is never violated in committed history.
//!
//! Run with:
//!
//! ```text
//! cargo run --example optimistic_lock
//! ```

use hope::runtime::{MsgKind, SimConfig, Simulation, Value};
use hope::sim::{LatencyModel, Topology, VirtualDuration};
use hope::{AidId, ProcessId};

fn ms(v: u64) -> VirtualDuration {
    VirtualDuration::from_millis(v)
}

fn main() {
    let topo = Topology::uniform(LatencyModel::Fixed(ms(10)));
    let mut sim = Simulation::new(SimConfig::with_seed(5).with_topology(topo));
    let manager = ProcessId(2);

    for w in 0..2u32 {
        sim.spawn(format!("worker{w}"), move |ctx| {
            // Stagger the second worker slightly so the race is realistic.
            if w == 1 {
                ctx.compute(ms(1))?;
            }
            let granted = ctx.aid_init()?;
            ctx.send(
                manager,
                Value::List(vec![
                    Value::Str("acquire".into()),
                    Value::Int(granted.index() as i64),
                ]),
            )?;
            if ctx.guess(granted)? {
                // Optimistic critical section: we act as if we hold the
                // lock while the grant decision is still in flight.
                ctx.compute(ms(4))?;
                ctx.output(format!("worker{w}: critical section done (optimistic)"))?;
                // Release so the other worker can proceed.
                ctx.send(manager, Value::List(vec![Value::Str("release".into())]))?;
            } else {
                // Denied: wait for the lock the slow way.
                ctx.output(format!("worker{w}: lock busy, waiting"))?;
                let grant = ctx.rpc(manager, Value::List(vec![Value::Str("wait".into())]))?;
                assert_eq!(grant, Value::Str("granted".into()));
                ctx.compute(ms(4))?;
                ctx.output(format!("worker{w}: critical section done (after wait)"))?;
                ctx.send(manager, Value::List(vec![Value::Str("release".into())]))?;
            }
            Ok(())
        });
    }

    sim.spawn("lock-manager", move |ctx| {
        let mut held = false;
        let mut waiter: Option<hope::runtime::Message> = None;
        loop {
            let msg = ctx.recv()?;
            let items = msg.payload.expect_list();
            match items[0].expect_str() {
                "acquire" => {
                    let aid = AidId::from_index(items[1].expect_int() as u64);
                    ctx.compute(VirtualDuration::from_micros(100))?;
                    if held {
                        ctx.deny(aid)?; // the optimistic holder loses
                    } else {
                        held = true;
                        ctx.affirm(aid)?;
                    }
                }
                "wait" => {
                    if held {
                        waiter = Some(msg); // reply when released
                    } else {
                        held = true;
                        ctx.reply(&msg, Value::Str("granted".into()))?;
                    }
                }
                "release" => {
                    held = false;
                    if let Some(m) = waiter.take() {
                        if matches!(m.kind, MsgKind::Request(_)) {
                            held = true;
                            ctx.reply(&m, Value::Str("granted".into()))?;
                        }
                    }
                }
                other => panic!("unknown lock op {other:?}"),
            }
        }
    });

    let report = sim.run();
    assert!(report.errors().is_empty(), "{report}");
    println!("committed history:");
    for o in report.outputs() {
        println!("  [{:>9}] {}", o.committed_at.to_string(), o.line);
    }
    println!(
        "(rollbacks: {}, speculative outputs discarded: {})",
        report.stats().rollback_events,
        report.stats().outputs_discarded
    );

    let lines = report.output_lines();
    // One worker won optimistically; the other was denied and waited.
    assert!(
        lines.iter().any(|l| l.contains("(optimistic)")),
        "{lines:?}"
    );
    assert!(lines.iter().any(|l| l.contains("lock busy")), "{lines:?}");
    assert!(
        lines.iter().any(|l| l.contains("(after wait)")),
        "{lines:?}"
    );
    assert!(report.stats().rollback_events >= 1);
}
