//! The paper's running example, end to end: Figures 1 and 2.
//!
//! Prints the report both ways — the synchronous Worker of Figure 1 and
//! the Call-Streaming Worker/WorryWart pair of Figure 2 — on the same
//! 30 ms-RTT topology, for a page that does and does not overflow, and
//! shows the latency saved and the rollback that repairs a wrong guess.
//!
//! Run with:
//!
//! ```text
//! cargo run --example page_printer
//! ```

use hope::callstream::page::{
    paper_topology, print_server, worker_optimistic, worker_pessimistic, worrywart, PAGE_SIZE,
};
use hope::runtime::{RunReport, SimConfig, Simulation};
use hope::sim::VirtualDuration;
use hope::ProcessId;

fn ms(v: u64) -> VirtualDuration {
    VirtualDuration::from_millis(v)
}

fn figure1(start_line: i64) -> RunReport {
    let mut sim = Simulation::new(SimConfig::with_seed(1).with_topology(paper_topology(ms(15))));
    let printer = ProcessId(1);
    sim.spawn("worker", move |ctx| {
        worker_pessimistic(ctx, printer, 1234, PAGE_SIZE)
    });
    sim.spawn("printer", move |ctx| {
        print_server(ctx, start_line, VirtualDuration::from_micros(100))
    });
    sim.run()
}

fn figure2(start_line: i64) -> RunReport {
    let mut sim = Simulation::new(SimConfig::with_seed(1).with_topology(paper_topology(ms(15))));
    let printer = ProcessId(1);
    let wart = ProcessId(2);
    sim.spawn("worker", move |ctx| {
        worker_optimistic(ctx, printer, wart, 1234)
    });
    sim.spawn("printer", move |ctx| {
        print_server(ctx, start_line, VirtualDuration::from_micros(100))
    });
    sim.spawn("worrywart", move |ctx| worrywart(ctx, printer, PAGE_SIZE));
    sim.run()
}

fn show(label: &str, report: &RunReport) {
    let t = report
        .completion_time(ProcessId(0))
        .expect("worker completes");
    println!(
        "{label:<34} completed at {:>9}  (rollbacks: {})",
        t.to_string(),
        report.stats().rollback_events
    );
}

fn main() {
    println!("page printer on a 30ms-RTT WAN (PageSize = {PAGE_SIZE})\n");

    println!("assumption holds — the total fits on the current page:");
    let f1 = figure1(10);
    let f2 = figure2(10);
    show("  Figure 1 (synchronous RPCs)", &f1);
    show("  Figure 2 (Call Streaming)", &f2);
    let t1 = f1.completion_time(ProcessId(0)).unwrap().as_millis_f64();
    let t2 = f2.completion_time(ProcessId(0)).unwrap().as_millis_f64();
    println!("  saving: {:.1}%\n", (t1 - t2) / t1 * 100.0);
    assert!(t2 < t1);
    assert_eq!(f2.stats().rollback_events, 0);

    println!("assumption fails — the page overflows, guess(PartPage) was wrong:");
    let f1 = figure1(70);
    let f2 = figure2(70);
    show("  Figure 1 (synchronous RPCs)", &f1);
    show("  Figure 2 (Call Streaming)", &f2);
    assert!(f2.stats().rollback_events >= 1);
    println!("  the Worker was rolled back, re-executed guess(PartPage) = false,");
    println!("  called newpage(), and produced the identical report:");
    assert_eq!(f1.output_lines(), f2.output_lines());
    for line in f2.output_lines() {
        println!("    output: {line}");
    }
}
