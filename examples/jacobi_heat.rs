//! Optimistic numerical computation (§7 future work, ref \[7\]): a 1-D heat
//! equation solved by domain-decomposed Jacobi iteration, with the
//! per-iteration halo exchange performed optimistically.
//!
//! Run with:
//!
//! ```text
//! cargo run --example jacobi_heat
//! ```

use hope::numeric::{reference_sums, run, Problem};
use hope::sim::{LatencyModel, Topology, VirtualDuration};

fn main() {
    let problem = Problem {
        n_chunks: 4,
        chunk_size: 8,
        iterations: 20,
        tolerance: 0.0, // exact: every misprediction is rolled back
        compute_per_iter: VirtualDuration::from_micros(200),
        left_boundary: 1.0,
        right_boundary: 0.0,
    };
    let topo = Topology::uniform(LatencyModel::Fixed(VirtualDuration::from_millis(5)));

    println!(
        "1-D heat equation, {} chunks × {} cells, {} iterations, 5ms links\n",
        problem.n_chunks, problem.chunk_size, problem.iterations
    );

    let sync = run(&problem, topo.clone(), 1, false);
    let exact = run(&problem, topo.clone(), 1, true);
    let loose = run(
        &Problem {
            tolerance: 0.05,
            ..problem.clone()
        },
        topo,
        1,
        true,
    );

    let reference = reference_sums(&problem);
    println!("| solver                | completion | rollbacks | max error vs reference |");
    println!("|-----------------------|------------|-----------|------------------------|");
    for (name, out) in [
        ("synchronous", &sync),
        ("optimistic (tol 0)", &exact),
        ("optimistic (tol 0.05)", &loose),
    ] {
        let max_err = out
            .sums
            .iter()
            .zip(&reference)
            .map(|(g, w)| (g.expect("committed") - w).abs())
            .fold(0.0f64, f64::max);
        println!(
            "| {name:<21} | {:>8.2}ms | {:>9} | {max_err:>22.3e} |",
            out.report.end_time().as_millis_f64(),
            out.report.stats().rollback_events,
        );
    }

    // With zero tolerance, the optimistic solution is the synchronous one.
    for (a, b) in exact.sums.iter().zip(&sync.sums) {
        assert!((a.unwrap() - b.unwrap()).abs() < 1e-9);
    }
    println!("\ntolerance 0 reproduced the synchronous solution exactly,");
    println!("repairing every misprediction by rollback; tolerance 0.05 traded");
    println!("bounded error for an order-of-magnitude latency win.");
}
