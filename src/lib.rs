//! # HOPE — Hopefully Optimistic Programming Environment
//!
//! A comprehensive Rust reproduction of *Formal Semantics for Expressing
//! Optimism: The Meaning of HOPE* (Cowan & Lutfiyya, PODC 1995).
//!
//! **Optimism is any computation that uses rollback.** A program increases
//! concurrency by making an optimistic assumption about its future state
//! and verifying the assumption in parallel with computations based on it.
//! HOPE is one data type and four primitives:
//!
//! | primitive | meaning |
//! |-----------|---------|
//! | `AID`        | a first-class name for an optimistic assumption |
//! | `guess(x)`   | proceed as if `x` holds; returns `true` now, `false` after rollback |
//! | `affirm(x)`  | the assumption was right |
//! | `deny(x)`    | it was wrong — roll back every causal descendant |
//! | `free_of(x)` | this computation is, and will remain, independent of `x` |
//!
//! Everything else — dependency tracking, message tagging, checkpointing,
//! cascading rollback, output commit — is automatic.
//!
//! ## Crate map
//!
//! * [`core`] (`hope-core`) — the paper's §4–§5 semantics, executable: the
//!   `Engine`, intervals, `IDO`/`DOM`/`IHD` bookkeeping,
//!   and the literal abstract machine used to verify the §6 theorems.
//! * [`analysis`] (`hope-analysis`) — static speculation-flow analysis and
//!   lints over machine programs, plus the `hope-lint` binary; statically
//!   doomed programs can be rejected before they run.
//! * [`mc`] (`hope-mc`) — a DPOR exhaustive scheduler over the abstract
//!   machine, plus the `hope-mc` binary: verdicts over *every*
//!   inequivalent schedule of a small program, not a sampled handful.
//! * [`sim`] (`hope-sim`) — the deterministic distributed-system substrate
//!   (virtual time, latency models, topologies, seeded RNG).
//! * [`runtime`] (`hope-runtime`) — processes as plain closures with the
//!   HOPE primitives, journal-replay rollback, ghost filtering and output
//!   commit on a virtual-time scheduler.
//! * [`callstream`] (`hope-callstream`) — the Call Streaming protocol of
//!   Figures 1–2, including the paper's page-printer example.
//! * [`timewarp`] (`hope-timewarp`) — Time Warp expressed in HOPE (the §2
//!   subsumption claim).
//! * [`replication`] (`hope-replication`) — optimistic replication (§7
//!   future work).
//! * [`recovery`] (`hope-recovery`) — optimistic message logging /
//!   recovery (§1, §2, \[24\]).
//! * [`numeric`] (`hope-numeric`) — optimistic numerical computation
//!   (§7 future work, ref \[7\]): Jacobi iteration with speculative halo
//!   exchange.
//! * [`tms`] (`hope-tms`) — distributed truth maintenance (§7 future
//!   work, ref \[12\]): dependency-directed backtracking as rollback.
//! * [`coedit`] (`hope-coedit`) — lock-free co-operative editing (§7
//!   future work, ref \[5\]): conflict repair by rollback and rebase.
//!
//! ## Quickstart
//!
//! ```
//! use hope::runtime::{SimConfig, Simulation, Value};
//! use hope::sim::VirtualDuration;
//!
//! let mut sim = Simulation::new(SimConfig::with_seed(42));
//! let verifier = hope::core::ProcessId(1);
//! sim.spawn("optimist", move |ctx| {
//!     let assumption = ctx.aid_init()?;
//!     ctx.send(verifier, Value::Int(assumption.index() as i64))?;
//!     if ctx.guess(assumption)? {
//!         ctx.output("fast path taken")?;
//!     } else {
//!         ctx.output("slow path taken")?;
//!     }
//!     Ok(())
//! });
//! sim.spawn("verifier", |ctx| {
//!     let m = ctx.recv()?;
//!     let aid = hope::core::AidId::from_index(m.payload.expect_int() as u64);
//!     ctx.compute(VirtualDuration::from_millis(3))?; // the slow check
//!     ctx.affirm(aid)?;
//!     Ok(())
//! });
//! let report = sim.run();
//! assert_eq!(report.output_lines(), vec!["fast path taken"]);
//! ```
//!
//! See `examples/` for complete programs and `DESIGN.md`/`EXPERIMENTS.md`
//! for the experiment index.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use hope_analysis as analysis;
pub use hope_callstream as callstream;
pub use hope_coedit as coedit;
pub use hope_core as core;
pub use hope_mc as mc;
pub use hope_numeric as numeric;
pub use hope_recovery as recovery;
pub use hope_replication as replication;
pub use hope_runtime as runtime;
pub use hope_sim as sim;
pub use hope_timewarp as timewarp;
pub use hope_tms as tms;

// The most commonly used items, at the top level for convenience.
pub use hope_core::{AidId, AidState, Engine, ProcessId, Tag};
pub use hope_runtime::{Ctx, Hope, SimConfig, Simulation, Value};
pub use hope_sim::{VirtualDuration, VirtualTime};
