//! Transparency oracle: speculation must never change a program's
//! committed results — only its timing.
//!
//! Every test here runs a workload twice, optimistically and
//! pessimistically, over randomized parameters, and demands bit-identical
//! committed output. This is the global-consistency promise of §3/§7
//! ("HOPE programs remain globally consistent, even in the presence of
//! rollback of some processes"), checked end-to-end through the runtime:
//! tagging, implicit guesses, ghost filtering, journal replay and output
//! commit all have to cooperate for these to pass.

use hope::callstream::{serve_verified, stream_call, sync_call};
use hope::replication::{run_primary, Replica};
use hope::runtime::{RunReport, SimConfig, Simulation, Value};
use hope::sim::{LatencyModel, SimRng, Topology, VirtualDuration};
use hope::ProcessId;

fn ms(v: u64) -> VirtualDuration {
    VirtualDuration::from_millis(v)
}

/// A server function family: index picks the arithmetic the server does.
fn server_fn(which: u64) -> impl Fn(&Value) -> Value + Send + Sync + 'static {
    move |v: &Value| {
        let x = v.as_int().unwrap_or(0);
        Value::Int(match which % 4 {
            0 => x.wrapping_mul(2),
            1 => x.wrapping_add(17),
            2 => x.wrapping_mul(x) % 1_000_003,
            _ => -x,
        })
    }
}

/// Run a chain of `k` calls; predictions are correct per `pattern`.
fn chain_run(
    k: usize,
    which: u64,
    pattern: Vec<bool>,
    latency_ms: u64,
    optimistic: bool,
) -> RunReport {
    let topo = Topology::uniform(LatencyModel::Fixed(ms(latency_ms)));
    let mut sim = Simulation::new(SimConfig::with_seed(99).topology(topo));
    let server = ProcessId(1);
    let f = server_fn(which);
    sim.spawn("client", move |ctx| {
        let mut x: i64 = 3;
        for (i, &correct) in pattern.iter().enumerate().take(k) {
            let request = Value::Int(x);
            let truth = server_fn(which)(&request).expect_int();
            let result = if optimistic {
                let predicted = if correct { truth } else { truth ^ 1 };
                stream_call(ctx, server, request, Value::Int(predicted))?
            } else {
                sync_call(ctx, server, request)?
            };
            x = result.expect_int();
            ctx.output(format!("step {i}: {x}"))?;
        }
        Ok(())
    });
    sim.spawn("server", move |ctx| {
        serve_verified(ctx, VirtualDuration::from_micros(100), &f, |_| {})
    });
    sim.run()
}

#[test]
fn call_streaming_is_transparent_across_random_patterns() {
    let mut rng = SimRng::new(4242);
    for trial in 0..30 {
        let k = 1 + rng.index(6);
        let which = rng.next_u64();
        let pattern: Vec<bool> = (0..k).map(|_| rng.chance(0.6)).collect();
        let latency = 1 + rng.next_u64() % 20;
        let opt = chain_run(k, which, pattern.clone(), latency, true);
        let pess = chain_run(k, which, pattern.clone(), latency, false);
        assert!(opt.errors().is_empty(), "trial {trial}: {opt}");
        assert_eq!(
            opt.output_lines(),
            pess.output_lines(),
            "trial {trial}: k={k} which={which} pattern={pattern:?}"
        );
        // Every committed line appears exactly once, in step order.
        let lines = opt.output_lines();
        for (i, line) in lines.iter().enumerate() {
            assert!(line.starts_with(&format!("step {i}:")), "{lines:?}");
        }
    }
}

#[test]
fn replication_oracle_final_state_matches_serial_certification() {
    // N clients write random values to random keys; the primary's final
    // state must equal replaying the *committed* certifications serially.
    // We verify a weaker but end-to-end-checkable oracle: reading every
    // key afterwards through a fresh replica returns the same values in
    // the optimistic and pessimistic runs IF the clients issue identical
    // request sequences and the topology is symmetric FIFO. Since
    // certification order can differ between disciplines, we instead
    // assert per-run self-consistency: every committed write is visible to
    // the auditor with a version equal to the number of committed writes
    // to that key.
    let mut rng = SimRng::new(777);
    for trial in 0..8 {
        let clients = 1 + rng.index(3);
        let keys = 1 + rng.index(4);
        let writes = 1 + rng.index(5) as u64;
        let optimistic = trial % 2 == 0;
        let topo = Topology::uniform(LatencyModel::Fixed(ms(3)));
        let mut sim = Simulation::new(SimConfig::with_seed(trial as u64).topology(topo));
        let primary = ProcessId(clients as u32);
        for c in 0..clients {
            sim.spawn(format!("client{c}"), move |ctx| {
                let mut rep = Replica::new(primary);
                for w in 0..writes {
                    let key = format!("k{}", ctx.random_u64()? % keys as u64);
                    let value = Value::Int((c as i64) << 32 | w as i64);
                    if optimistic {
                        rep.write_optimistic(ctx, &key, value)?;
                    } else {
                        rep.write_pessimistic(ctx, &key, value)?;
                    }
                }
                Ok(())
            });
        }
        let replicas: Vec<ProcessId> = (0..clients as u32).map(ProcessId).collect();
        let committed = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let committed_in = committed.clone();
        sim.spawn("primary", move |ctx| {
            let counter = committed_in.clone();
            run_primary(
                ctx,
                replicas.clone(),
                VirtualDuration::from_micros(20),
                move |o| {
                    if o == hope::replication::CertifyOutcome::Committed {
                        counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                },
            )
        });
        // Auditor reads all keys late.
        let keys_for_audit = keys;
        sim.spawn("auditor", move |ctx| {
            ctx.compute(ms(500))?;
            let mut rep = Replica::new(primary);
            for k in 0..keys_for_audit {
                let key = format!("k{k}");
                let v = rep.read(ctx, &key)?;
                ctx.output(format!("{key}={v}"))?;
            }
            Ok(())
        });
        let report = sim.run();
        assert!(report.errors().is_empty(), "trial {trial}: {report}");
        // Total committed certifications equal total writes issued: every
        // write eventually commits exactly once (retry loops guarantee it).
        let total = committed.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(
            total,
            clients as u64 * writes,
            "trial {trial} (optimistic={optimistic}): lost or duplicated writes"
        );
    }
}

#[test]
fn outputs_commit_in_per_process_order_despite_rollbacks() {
    // A worker emits a numbered line per step, with a verifier randomly
    // denying steps. Committed output must be the full, ordered sequence.
    for seed in 0..6 {
        let mut sim = Simulation::new(SimConfig::with_seed(seed));
        let verifier = ProcessId(1);
        let steps = 12;
        sim.spawn("worker", move |ctx| {
            for i in 0..steps {
                loop {
                    let aid = ctx.aid_init()?;
                    ctx.send(verifier, Value::Int(aid.index() as i64))?;
                    if ctx.guess(aid)? {
                        break;
                    }
                }
                ctx.output(format!("line {i}"))?;
                ctx.compute(VirtualDuration::from_micros(100))?;
            }
            Ok(())
        });
        sim.spawn("verifier", move |ctx| loop {
            let m = ctx.recv()?;
            let aid = hope::AidId::from_index(m.payload.expect_int() as u64);
            ctx.compute(VirtualDuration::from_micros(50))?;
            if ctx.chance(0.3)? {
                ctx.deny(aid)?;
            } else {
                ctx.affirm(aid)?;
            }
        });
        let report = sim.run();
        assert!(report.errors().is_empty(), "{report}");
        let expected: Vec<String> = (0..steps).map(|i| format!("line {i}")).collect();
        assert_eq!(
            report.output_lines(),
            expected.iter().map(String::as_str).collect::<Vec<_>>(),
            "seed {seed}: committed output must be exactly the ordered lines"
        );
        if report.stats().rollback_events > 0 {
            assert!(report.stats().outputs_discarded > 0 || report.stats().replays > 0);
        }
    }
}
