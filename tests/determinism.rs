//! Determinism: every simulation — including its rollback cascades — is a
//! pure function of the program and the seed.
//!
//! Reproducibility is what makes the experiment tables meaningful and
//! rollback bugs debuggable; these tests pin it down across all the
//! moving parts (threads, channels, rollbacks, ghosts, randomness).

use hope::callstream::{serve_verified, stream_call};
use hope::runtime::{RunReport, SimConfig, Simulation, Value};
use hope::sim::{LatencyModel, Topology, VirtualDuration};
use hope::timewarp::phold::run_phold;
use hope::ProcessId;

fn ms(v: u64) -> VirtualDuration {
    VirtualDuration::from_millis(v)
}

fn fingerprint(r: &RunReport) -> String {
    format!(
        "end={} events={} sent={} delivered={} ghosts={} rollbacks={} replays={} \
         released={} discarded={} guesses={} finalized={} outputs={:?}",
        r.end_time(),
        r.events(),
        r.stats().messages_sent,
        r.stats().messages_delivered,
        r.stats().ghosts_dropped,
        r.stats().rollback_events,
        r.stats().replays,
        r.stats().outputs_released,
        r.stats().outputs_discarded,
        r.stats().engine.guesses,
        r.stats().engine.finalized,
        r.output_lines(),
    )
}

fn busy_world(seed: u64) -> RunReport {
    // Random latencies, random denials, random payloads: if anything in
    // the runtime is schedule-dependent, this surfaces it.
    let topo = Topology::uniform(LatencyModel::Uniform {
        lo: ms(1),
        hi: ms(9),
    });
    let mut sim = Simulation::new(SimConfig::with_seed(seed).topology(topo));
    let server = ProcessId(2);
    for c in 0..2u32 {
        sim.spawn(format!("client{c}"), move |ctx| {
            let mut x: i64 = c as i64 + 1;
            for _ in 0..6 {
                let noise = (ctx.random_u64()? % 5) as i64;
                let predicted = x * 2 + noise - 2; // sometimes right
                let r = stream_call(ctx, server, Value::Int(x), Value::Int(predicted))?;
                x = r.expect_int() % 10_007;
                ctx.compute(VirtualDuration::from_micros(300))?;
            }
            ctx.output(format!("client{c} final={x}"))?;
            Ok(())
        });
    }
    sim.spawn("server", |ctx| {
        serve_verified(
            ctx,
            VirtualDuration::from_micros(80),
            |v| Value::Int(v.expect_int() * 2),
            |_| {},
        )
    });
    sim.run()
}

#[test]
fn identical_seeds_are_bit_identical() {
    for seed in [0, 1, 7, 123456789] {
        let a = fingerprint(&busy_world(seed));
        let b = fingerprint(&busy_world(seed));
        assert_eq!(a, b, "seed {seed} diverged across runs");
    }
}

#[test]
fn different_seeds_differ_somewhere() {
    let prints: Vec<String> = (0..4).map(|s| fingerprint(&busy_world(s))).collect();
    let distinct: std::collections::BTreeSet<&String> = prints.iter().collect();
    assert!(
        distinct.len() >= 2,
        "4 different seeds produced identical worlds — randomness is not wired through"
    );
}

#[test]
fn phold_timewarp_is_deterministic() {
    let run = || {
        let r = run_phold(
            6,
            Topology::lan(),
            VirtualDuration::from_micros(400),
            8,
            90,
            31,
        );
        (
            r.handled,
            r.rollbacks,
            r.report.end_time(),
            r.report.stats().ghosts_dropped,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn rollback_storms_are_reproducible() {
    // All predictions wrong: maximal rollback traffic, still a pure
    // function of the seed.
    let run = |seed| {
        let mut sim = Simulation::new(SimConfig::with_seed(seed));
        let server = ProcessId(1);
        sim.spawn("client", move |ctx| {
            let mut x: i64 = 1;
            for _ in 0..8 {
                let r = stream_call(ctx, server, Value::Int(x), Value::Int(i64::MIN))?;
                x = r.expect_int();
            }
            ctx.output(format!("final={x}"))?;
            Ok(())
        });
        sim.spawn("server", |ctx| {
            serve_verified(
                ctx,
                VirtualDuration::from_micros(50),
                |v| Value::Int(v.expect_int().wrapping_add(1)),
                |_| {},
            )
        });
        fingerprint(&sim.run())
    };
    assert_eq!(run(5), run(5));
    assert_eq!(run(6), run(6));
}
