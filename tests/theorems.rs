//! E9 — mechanical verification of the paper's §5–§6 lemmas and theorems.
//!
//! A random driver executes arbitrary interleavings of HOPE primitives
//! (including message-mediated dependence transfer) against the semantics
//! engine and checks, after *every* transition:
//!
//! * **Lemma 5.1** — `X ∈ A.IDO ⟺ A ∈ X.DOM` (plus the prefix-subset
//!   property its proof rests on) via `Engine::verify_invariants`;
//! * **Theorem 5.1** — rollback truncates a *suffix*: each process's live
//!   history only ever changes by appending or by cutting a tail;
//! * **Theorem 5.2** — a finalized interval is never rolled back;
//! * **Theorem 6.1 / 6.2** — an interval finalizes exactly when every
//!   assumption it depends on is affirmed by intervals that become
//!   definite;
//! * **Lemma 6.3 / Corollary 6.1** — a speculatively affirmed AID becomes
//!   definitively affirmed iff its affirmer finalizes, and is denied if
//!   its affirmer rolls back;
//! * **Theorem 6.3** — after `free_of(X)`, the asserting interval either
//!   never depends on `X` or is rolled back;
//! * **ghost soundness** — a message whose tag contains a denied AID was
//!   necessarily sent by a rolled-back interval (what makes the runtime's
//!   ghost filtering safe);
//! * **resume-point soundness** — after any rollback, the earliest
//!   discarded interval of each victim has a definitively denied guessed
//!   AID, so the runtime's re-executed guess observes `false` (Equation
//!   24).
//!
//! The suite runs both exhaustively (all short scripts over a small
//! alphabet) and property-based (proptest over long random scripts).

use std::collections::BTreeMap;

use hope_core::{
    AidId, AidState, Checkpoint, Effect, Engine, GuessOutcome, IntervalId, IntervalStatus,
    ProcessId, ReceiveOutcome, Tag,
};
use proptest::prelude::*;

/// One abstract operation of the driver's alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Guess {
        p: usize,
        x: usize,
    },
    Affirm {
        p: usize,
        x: usize,
    },
    Deny {
        p: usize,
        x: usize,
    },
    FreeOf {
        p: usize,
        x: usize,
    },
    /// Transfer dependence: tag a message at `from`, deliver it at `to`.
    Send {
        from: usize,
        to: usize,
    },
}

#[derive(Debug, Clone)]
struct SentMessage {
    tag: Tag,
    sender_interval: Option<IntervalId>,
}

#[derive(Debug, Clone)]
struct SpecAffirmRecord {
    aid: AidId,
    affirmer: IntervalId,
}

#[derive(Debug, Clone)]
struct FreeOfRecord {
    aid: AidId,
    interval: Option<IntervalId>,
    was_dependent: bool,
}

/// Drives an [`Engine`] through a script while checking every theorem.
struct Driver {
    engine: Engine,
    pids: Vec<ProcessId>,
    aids: Vec<AidId>,
    /// Live history snapshot per process, for the Theorem 5.1 check.
    histories: Vec<Vec<IntervalId>>,
    /// Every interval ever finalized (Theorem 5.2).
    finalized: Vec<IntervalId>,
    sent: Vec<SentMessage>,
    spec_affirms: Vec<SpecAffirmRecord>,
    free_ofs: Vec<FreeOfRecord>,
    next_ps: u64,
}

impl Driver {
    fn new(n_procs: usize, n_aids: usize) -> Self {
        let mut engine = Engine::new();
        engine.set_invariant_checking(true);
        let pids: Vec<ProcessId> = (0..n_procs).map(|_| engine.register_process()).collect();
        let aids: Vec<AidId> = (0..n_aids).map(|_| engine.aid_init(pids[0])).collect();
        Driver {
            engine,
            pids,
            aids,
            histories: vec![Vec::new(); n_procs],
            finalized: Vec::new(),
            sent: Vec::new(),
            spec_affirms: Vec::new(),
            free_ofs: Vec::new(),
            next_ps: 0,
        }
    }

    fn ps(&mut self) -> Checkpoint {
        self.next_ps += 1;
        Checkpoint(self.next_ps)
    }

    /// Execute one op; consumed-AID misuse is skipped (the generator is
    /// oblivious to consumption, which is the point: the engine must
    /// reject it cleanly).
    fn exec(&mut self, op: Op) {
        let effects = match op {
            Op::Guess { p, x } => {
                let pid = self.pids[p];
                let aid = self.aids[x];
                let ps = self.ps();
                let (_, fx) = self.engine.guess(pid, &[aid], ps).expect("guess is total");
                fx
            }
            Op::Affirm { p, x } => {
                let pid = self.pids[p];
                let aid = self.aids[x];
                match self.engine.affirm(pid, aid) {
                    Ok(fx) => {
                        if let Some(Effect::SpeculativelyAffirmed { aid, by }) = fx
                            .iter()
                            .find(|e| matches!(e, Effect::SpeculativelyAffirmed { .. }))
                        {
                            self.spec_affirms.push(SpecAffirmRecord {
                                aid: *aid,
                                affirmer: *by,
                            });
                        }
                        fx
                    }
                    Err(hope_core::Error::AidConsumed(_)) => Vec::new(),
                    Err(e) => panic!("unexpected engine error: {e}"),
                }
            }
            Op::Deny { p, x } => {
                let pid = self.pids[p];
                let aid = self.aids[x];
                match self.engine.deny(pid, aid) {
                    Ok(fx) => fx,
                    Err(hope_core::Error::AidConsumed(_)) => Vec::new(),
                    Err(e) => panic!("unexpected engine error: {e}"),
                }
            }
            Op::FreeOf { p, x } => {
                let pid = self.pids[p];
                let aid = self.aids[x];
                let interval = self.engine.current_interval(pid).unwrap();
                let was_dependent = interval
                    .map(|a| self.engine.interval(a).unwrap().ido().contains(&aid))
                    .unwrap_or(false);
                match self.engine.free_of(pid, aid) {
                    Ok(fx) => {
                        self.free_ofs.push(FreeOfRecord {
                            aid,
                            interval,
                            was_dependent,
                        });
                        fx
                    }
                    Err(hope_core::Error::AidConsumed(_)) => Vec::new(),
                    Err(e) => panic!("unexpected engine error: {e}"),
                }
            }
            Op::Send { from, to } => {
                let from_pid = self.pids[from];
                let to_pid = self.pids[to];
                let tag = self.engine.dependence_tag(from_pid).unwrap();
                let sender_interval = self.engine.current_interval(from_pid).unwrap();
                self.sent.push(SentMessage {
                    tag: tag.clone(),
                    sender_interval,
                });
                let ps = self.ps();
                let (outcome, fx) = self.engine.implicit_guess(to_pid, &tag, ps).unwrap();
                if let ReceiveOutcome::Ghost(denied) = outcome {
                    // Engine-level ghost check is immediate here because
                    // this driver delivers synchronously.
                    assert_eq!(
                        self.engine.aid_state(denied).unwrap(),
                        AidState::Denied,
                        "ghost verdicts cite a denied AID"
                    );
                }
                fx
            }
        };
        self.check_after(&effects);
    }

    /// The full post-transition theorem battery.
    fn check_after(&mut self, effects: &[Effect]) {
        // Lemma 5.1 + prefix-subset + status coherence.
        self.engine
            .verify_invariants()
            .unwrap_or_else(|e| panic!("invariant violated: {e}"));

        // Record finalizations; Theorem 5.2 forbids their rollback later.
        for e in effects {
            if let Effect::Finalized { interval, .. } = e {
                self.finalized.push(*interval);
            }
        }
        for a in &self.finalized {
            assert_eq!(
                self.engine.interval(*a).unwrap().status(),
                IntervalStatus::Definite,
                "Theorem 5.2: finalized {a} must stay definite"
            );
        }

        // Theorem 5.1: each process's live history evolved only by
        // appending new intervals and/or truncating a suffix.
        for (i, pid) in self.pids.iter().enumerate() {
            let new: Vec<IntervalId> = self.engine.history(*pid).unwrap().to_vec();
            let old = &self.histories[i];
            let common = old
                .iter()
                .zip(new.iter())
                .take_while(|(a, b)| a == b)
                .count();
            assert!(
                common == old.len()
                    || common == new.len()
                    || new[common..].iter().all(|a| !old.contains(a)),
                "history changed non-suffix-wise: old={old:?} new={new:?}"
            );
            for dropped in &old[common..] {
                if !new.contains(dropped) {
                    assert_eq!(
                        self.engine.interval(*dropped).unwrap().status(),
                        IntervalStatus::RolledBack,
                        "Theorem 5.1: {dropped} left the history without rolling back"
                    );
                }
            }
            self.histories[i] = new;
        }

        // Resume-point soundness: the earliest discarded interval of every
        // rollback has a definitively denied guessed AID.
        for e in effects {
            if let Effect::RolledBack { intervals, .. } = e {
                let first = intervals.first().expect("non-empty rollback");
                let view = self.engine.interval(*first).unwrap();
                if !view.guessed().is_empty() {
                    assert!(
                        view.guessed()
                            .iter()
                            .any(|x| self.engine.aid_state(x).unwrap() == AidState::Denied),
                        "Equation 24: re-executed guess at {first} would speculate again"
                    );
                }
            }
        }

        // Lemma 6.3 / Corollary 6.1: speculative affirms follow their
        // affirmer's fate.
        for rec in &self.spec_affirms {
            let state = self.engine.aid_state(rec.aid).unwrap();
            match self.engine.interval(rec.affirmer).unwrap().status() {
                IntervalStatus::Definite => assert_eq!(
                    state,
                    AidState::Affirmed,
                    "Lemma 6.1: definite affirmer ⇒ affirmed AID {}",
                    rec.aid
                ),
                IntervalStatus::RolledBack => assert_eq!(
                    state,
                    AidState::Denied,
                    "footnote 2: rolled-back affirmer ⇒ denied AID {}",
                    rec.aid
                ),
                IntervalStatus::Speculative => assert_eq!(
                    state,
                    AidState::Undecided,
                    "Lemma 6.3: undecided affirmer ⇒ undecided AID {}",
                    rec.aid
                ),
            }
        }

        // Theorem 6.3: free_of(X) by A ⇒ A never depends on X, or A is
        // rolled back.
        for rec in &self.free_ofs {
            if let Some(a) = rec.interval {
                let view = self.engine.interval(a).unwrap();
                if rec.was_dependent {
                    assert_eq!(
                        view.status(),
                        IntervalStatus::RolledBack,
                        "Theorem 6.3: violated free_of must roll {a} back"
                    );
                } else if view.status() == IntervalStatus::Speculative {
                    assert!(
                        !view.ido().contains(&rec.aid),
                        "Theorem 6.3: {a} became dependent on {} after free_of",
                        rec.aid
                    );
                }
            }
        }

        // Ghost soundness: a denied AID in a sent tag implies the sending
        // interval rolled back.
        for m in &self.sent {
            let has_denied = m
                .tag
                .iter()
                .any(|x| self.engine.aid_state(x).unwrap() == AidState::Denied);
            if has_denied {
                let sender = m
                    .sender_interval
                    .expect("a tagged message has a speculative sender");
                assert_eq!(
                    self.engine.interval(sender).unwrap().status(),
                    IntervalStatus::RolledBack,
                    "ghost soundness: tag {} denied but sender {sender} lives",
                    m.tag
                );
            }
        }

        // Theorem 6.2 (⇐ direction, checkable per state): a definite
        // interval has an empty IDO; a speculative one a non-empty IDO of
        // undecided AIDs.
        for hist in &self.histories {
            for a in hist {
                let view = self.engine.interval(*a).unwrap();
                match view.status() {
                    IntervalStatus::Definite => assert!(view.ido().is_empty()),
                    IntervalStatus::Speculative => {
                        assert!(!view.ido().is_empty());
                        for x in view.ido() {
                            assert_eq!(
                                self.engine.aid_state(x).unwrap(),
                                AidState::Undecided,
                                "live dependence on a decided AID"
                            );
                        }
                    }
                    IntervalStatus::RolledBack => unreachable!("not in live history"),
                }
            }
        }
    }

    /// Theorem 6.1, end-of-run form: affirm every still-affirmable AID
    /// from a fresh definite process. Afterwards a process may remain
    /// speculative **only** through AIDs consumed by *speculative*
    /// primitives whose issuers never became definite — the speculative
    /// cross-affirmation cycles this reproduction documents (Theorem 6.1's
    /// hypothesis "by intervals that eventually become definite" is
    /// unsatisfiable there). Any other residue is a real violation.
    fn settle_and_check_theorem_6_1(mut self) {
        let judge = self.engine.register_process();
        // Affirming can *release* AIDs: a definite deny cascading out of a
        // finalization may roll back an interval holding a speculative
        // deny of some other AID, which un-consumes it. Iterate to a
        // fixpoint (each pass decides at least one AID or stops).
        loop {
            let mut progressed = false;
            for x in self.aids.clone() {
                match self.engine.affirm(judge, x) {
                    Ok(fx) => {
                        progressed = true;
                        self.check_after(&fx);
                    }
                    Err(hope_core::Error::AidConsumed(_)) => {}
                    Err(e) => panic!("unexpected engine error: {e}"),
                }
            }
            if !progressed {
                break;
            }
        }
        for pid in &self.pids {
            if let Some(a) = self.engine.current_interval(*pid).unwrap() {
                for x in self.engine.interval(a).unwrap().ido() {
                    let view = self.engine.aid(x).unwrap();
                    assert!(
                        view.is_consumed(),
                        "Theorem 6.1/6.2: {x} was definitively affirmed, yet \
                         {pid} still depends on it"
                    );
                    assert!(
                        view.speculatively_affirmed_by().is_some()
                            || view.speculatively_denied_by().is_some(),
                        "consumed-but-undecided {x} must be pending a \
                         speculative affirm/deny (a cross-affirmation cycle)"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// exhaustive small-model checking
// ---------------------------------------------------------------------

/// Every op over 2 processes × 2 AIDs.
fn alphabet() -> Vec<Op> {
    let mut ops = Vec::new();
    for p in 0..2 {
        for x in 0..2 {
            ops.push(Op::Guess { p, x });
            ops.push(Op::Affirm { p, x });
            ops.push(Op::Deny { p, x });
            ops.push(Op::FreeOf { p, x });
        }
        ops.push(Op::Send { from: p, to: 1 - p });
    }
    ops
}

#[test]
fn exhaustive_scripts_up_to_length_3() {
    let ops = alphabet(); // 18 ops ⇒ 18³ = 5832 scripts of length 3
    let mut count = 0u64;
    for &a in &ops {
        for &b in &ops {
            for &c in &ops {
                let mut d = Driver::new(2, 2);
                d.exec(a);
                d.exec(b);
                d.exec(c);
                d.settle_and_check_theorem_6_1();
                count += 1;
            }
        }
    }
    assert_eq!(count, 18u64.pow(3));
}

#[test]
fn exhaustive_guess_prefixed_scripts_of_length_4() {
    // Longer scripts, restricted to start from a speculative state (the
    // interesting regime): guess(P0, x0) then any 3 ops.
    let ops = alphabet();
    for &a in &ops {
        for &b in &ops {
            for &c in &ops {
                let mut d = Driver::new(2, 2);
                d.exec(Op::Guess { p: 0, x: 0 });
                d.exec(a);
                d.exec(b);
                d.exec(c);
                d.settle_and_check_theorem_6_1();
            }
        }
    }
}

// ---------------------------------------------------------------------
// property-based checking
// ---------------------------------------------------------------------

fn op_strategy(n_procs: usize, n_aids: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..n_procs, 0..n_aids).prop_map(|(p, x)| Op::Guess { p, x }),
        2 => (0..n_procs, 0..n_aids).prop_map(|(p, x)| Op::Affirm { p, x }),
        1 => (0..n_procs, 0..n_aids).prop_map(|(p, x)| Op::Deny { p, x }),
        1 => (0..n_procs, 0..n_aids).prop_map(|(p, x)| Op::FreeOf { p, x }),
        3 => (0..n_procs, 0..n_procs).prop_map(|(from, to)| Op::Send { from, to }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn theorems_hold_on_random_scripts(
        script in proptest::collection::vec(op_strategy(4, 6), 0..48)
    ) {
        let mut d = Driver::new(4, 6);
        for op in script {
            d.exec(op);
        }
        d.settle_and_check_theorem_6_1();
    }

    #[test]
    fn theorems_hold_on_dense_two_party_scripts(
        script in proptest::collection::vec(op_strategy(2, 3), 0..64)
    ) {
        let mut d = Driver::new(2, 3);
        for op in script {
            d.exec(op);
        }
        d.settle_and_check_theorem_6_1();
    }
}

// ---------------------------------------------------------------------
// seeded-loop checking (no proptest dependency)
// ---------------------------------------------------------------------
//
// The same two properties as the proptest block above, but as plain
// `#[test]` functions over an explicit SplitMix64 stream: deterministic,
// shrink-free, and independent of which property-testing harness (real
// proptest or the offline shim) the build resolves.

/// SplitMix64; mirrors `hope_sim::rng` so failures reproduce from the
/// printed seed alone.
struct ScriptRng(u64);

impl ScriptRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// One op with the same 3:2:1:1:3 weighting as `op_strategy`.
    fn op(&mut self, n_procs: usize, n_aids: usize) -> Op {
        let p = self.below(n_procs);
        let x = self.below(n_aids);
        match self.below(10) {
            0..=2 => Op::Guess { p, x },
            3..=4 => Op::Affirm { p, x },
            5 => Op::Deny { p, x },
            6 => Op::FreeOf { p, x },
            _ => Op::Send {
                from: p,
                to: self.below(n_procs),
            },
        }
    }
}

fn run_seeded_scripts(n_procs: usize, n_aids: usize, max_len: usize, cases: u64) {
    for case in 0..cases {
        let mut rng = ScriptRng(0xC0FF_EE00 ^ (case.wrapping_mul(0x9e37_79b9)));
        let len = rng.below(max_len + 1);
        let mut d = Driver::new(n_procs, n_aids);
        for step in 0..len {
            let op = rng.op(n_procs, n_aids);
            // The Driver's battery panics with context on violation; the
            // case number here makes the failing script reproducible.
            let _ = (case, step);
            d.exec(op);
        }
        d.settle_and_check_theorem_6_1();
    }
}

#[test]
fn theorems_hold_on_seeded_random_scripts() {
    run_seeded_scripts(4, 6, 48, 256);
}

#[test]
fn theorems_hold_on_seeded_dense_two_party_scripts() {
    run_seeded_scripts(2, 3, 64, 256);
}

// ---------------------------------------------------------------------
// directed regression scripts for the trickiest interleavings
// ---------------------------------------------------------------------

#[test]
fn chained_speculative_affirms_resolve_transitively() {
    // Corollary 6.1: X depends on Y depends on Z; affirming Z settles all.
    let mut d = Driver::new(3, 3);
    d.exec(Op::Guess { p: 0, x: 0 }); // P0 speculative on X
    d.exec(Op::Guess { p: 1, x: 1 }); // P1 speculative on Y
    d.exec(Op::Affirm { p: 1, x: 0 }); // X now depends on Y
    d.exec(Op::Guess { p: 2, x: 2 }); // P2 speculative on Z
    d.exec(Op::Affirm { p: 2, x: 1 }); // Y now depends on Z
                                       // Definite affirm of Z from a definite process settles the chain.
    let judge = d.engine.register_process();
    let z = d.aids[2];
    let fx = d.engine.affirm(judge, z).unwrap();
    d.check_after(&fx);
    assert_eq!(d.engine.aid_state(d.aids[0]).unwrap(), AidState::Affirmed);
    assert_eq!(d.engine.aid_state(d.aids[1]).unwrap(), AidState::Affirmed);
    for p in 0..3 {
        assert!(!d.engine.is_speculative(d.pids[p]).unwrap());
    }
}

#[test]
fn chained_speculative_affirms_deny_transitively() {
    // Corollary 6.1, negative direction: denying Z kills Y and X.
    let mut d = Driver::new(3, 3);
    d.exec(Op::Guess { p: 0, x: 0 });
    d.exec(Op::Guess { p: 1, x: 1 });
    d.exec(Op::Affirm { p: 1, x: 0 });
    d.exec(Op::Guess { p: 2, x: 2 });
    d.exec(Op::Affirm { p: 2, x: 1 });
    let judge = d.engine.register_process();
    let z = d.aids[2];
    let fx = d.engine.deny(judge, z).unwrap();
    d.check_after(&fx);
    assert_eq!(d.engine.aid_state(d.aids[0]).unwrap(), AidState::Denied);
    assert_eq!(d.engine.aid_state(d.aids[1]).unwrap(), AidState::Denied);
    for p in 0..3 {
        assert!(
            d.engine.history(d.pids[p]).unwrap().is_empty(),
            "everything rolled back"
        );
    }
}

#[test]
fn speculative_deny_chain_applies_on_finalization() {
    // P1, speculative on Y, denies X; X's dependents survive until Y is
    // affirmed, then roll back (Equation 22 via §5.5).
    let mut d = Driver::new(3, 2);
    d.exec(Op::Guess { p: 0, x: 0 }); // P0 depends on X
    d.exec(Op::Guess { p: 1, x: 1 }); // P1 depends on Y
    d.exec(Op::Deny { p: 1, x: 0 }); // speculative deny of X
    assert_eq!(d.engine.aid_state(d.aids[0]).unwrap(), AidState::Undecided);
    assert!(d.engine.is_speculative(d.pids[0]).unwrap());
    d.exec(Op::Affirm { p: 2, x: 1 }); // definite affirm of Y
    assert_eq!(d.engine.aid_state(d.aids[0]).unwrap(), AidState::Denied);
    assert!(!d.engine.is_speculative(d.pids[0]).unwrap());
    assert!(d.engine.history(d.pids[0]).unwrap().is_empty());
}

#[test]
fn dependence_propagates_through_message_chains() {
    let mut d = Driver::new(4, 1);
    d.exec(Op::Guess { p: 0, x: 0 });
    d.exec(Op::Send { from: 0, to: 1 });
    d.exec(Op::Send { from: 1, to: 2 });
    d.exec(Op::Send { from: 2, to: 3 });
    for p in 0..4 {
        assert!(d.engine.is_speculative(d.pids[p]).unwrap());
    }
    d.exec(Op::Deny { p: 0, x: 0 });
    for p in 0..4 {
        assert!(
            d.engine.history(d.pids[p]).unwrap().is_empty(),
            "P{p} must roll back"
        );
    }
}

#[test]
fn guess_after_settlement_is_definite() {
    let mut d = Driver::new(2, 2);
    d.exec(Op::Guess { p: 0, x: 0 });
    d.exec(Op::Affirm { p: 1, x: 0 });
    // P0's interval finalized; a new guess on an affirmed AID finalizes
    // instantly.
    let pid = d.pids[0];
    let aid = d.aids[0];
    let (outcome, fx) = d.engine.guess(pid, &[aid], Checkpoint(99)).unwrap();
    d.check_after(&fx);
    match outcome {
        GuessOutcome::Begun(a) => {
            assert_eq!(
                d.engine.interval(a).unwrap().status(),
                IntervalStatus::Definite
            );
        }
        GuessOutcome::AlreadyFalse(_) => panic!("affirmed, not denied"),
    }
    assert!(!d.engine.is_speculative(pid).unwrap());
}

#[test]
fn interleaved_histories_stay_consistent_under_stress() {
    // A deterministic stress mix exercising every effect kind repeatedly.
    let mut d = Driver::new(4, 6);
    let script = [
        Op::Guess { p: 0, x: 0 },
        Op::Send { from: 0, to: 1 },
        Op::Guess { p: 1, x: 1 },
        Op::Affirm { p: 1, x: 0 },
        Op::Send { from: 1, to: 2 },
        Op::Guess { p: 2, x: 2 },
        Op::Deny { p: 2, x: 1 },
        Op::FreeOf { p: 3, x: 3 },
        Op::Guess { p: 3, x: 4 },
        Op::Send { from: 3, to: 0 },
        Op::Affirm { p: 0, x: 4 },
        Op::Deny { p: 3, x: 5 },
        Op::Guess { p: 0, x: 5 },
        Op::Send { from: 2, to: 3 },
        Op::Affirm { p: 2, x: 2 },
        Op::FreeOf { p: 1, x: 0 },
    ];
    for op in script {
        d.exec(op);
    }
    d.settle_and_check_theorem_6_1();
}

#[test]
fn cross_affirmation_resolves_under_the_resolution_rule() {
    // The naive reading of guess (always add the named AID to IDO) lets
    // two intervals speculatively affirm each other's assumptions into an
    // unresolvable cycle. Our engine resolves a guess of a speculatively
    // affirmed AID to the affirmer's current dependence set (the
    // Eq. 10–14 replacement reading), which makes such scripts *resolve*:
    let mut d = Driver::new(2, 2);
    d.exec(Op::Guess { p: 0, x: 0 }); // A0 depends on X0
    d.exec(Op::Guess { p: 1, x: 1 }); // B0 depends on X1
    d.exec(Op::Affirm { p: 1, x: 0 }); // X0's fate ← B0 (depends on X1)
    d.exec(Op::Guess { p: 0, x: 0 }); // resolves to dependence on X1
    d.exec(Op::Affirm { p: 0, x: 1 }); // self-affirm: settles everything
    for x in [d.aids[0], d.aids[1]] {
        assert_eq!(d.engine.aid_state(x).unwrap(), AidState::Affirmed);
    }
    for p in 0..2 {
        assert!(!d.engine.is_speculative(d.pids[p]).unwrap());
    }
}

#[test]
fn mutual_speculative_denies_livelock() {
    // A reproduction finding the paper does not discuss: two speculative
    // intervals can deny *each other's* assumptions. Each deny pends on
    // its issuer finalizing (§5.5); each issuer's finalization pends on
    // the other's deny taking effect. Both AIDs are consumed, so no third
    // party can break the tie: the system livelocks, consistently.
    let mut d = Driver::new(2, 2);
    d.exec(Op::Guess { p: 0, x: 0 }); // A depends on X0
    d.exec(Op::Guess { p: 1, x: 1 }); // B depends on X1
    d.exec(Op::Deny { p: 0, x: 1 }); // A.IHD = {X1}: applies when A final
    d.exec(Op::Deny { p: 1, x: 0 }); // B.IHD = {X0}: applies when B final
    for x in [d.aids[0], d.aids[1]] {
        assert_eq!(d.engine.aid_state(x).unwrap(), AidState::Undecided);
        assert!(d.engine.aid(x).unwrap().is_consumed());
    }
    let judge = d.engine.register_process();
    for x in [d.aids[0], d.aids[1]] {
        assert!(matches!(
            d.engine.affirm(judge, x),
            Err(hope_core::Error::AidConsumed(_))
        ));
        assert!(matches!(
            d.engine.deny(judge, x),
            Err(hope_core::Error::AidConsumed(_))
        ));
    }
    for p in 0..2 {
        assert!(d.engine.is_speculative(d.pids[p]).unwrap());
    }
    d.engine.verify_invariants().unwrap();
}

#[test]
fn aid_state_and_interval_maps_agree_at_scale() {
    // Larger randomized soak with a fixed seed (cheap, deterministic).
    use hope_core::machine::Machine;
    use hope_core::program::Program;
    for seed in 0..25 {
        let program = Program::generate(seed, 4, 40, 5);
        let mut m = Machine::new(program);
        m.run_seeded(20_000, seed * 31 + 7);
        m.engine()
            .verify_invariants()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        // Spot-check Theorem 5.2 over the whole interval table.
        let mut statuses: BTreeMap<IntervalId, IntervalStatus> = BTreeMap::new();
        for i in 0..m.engine().interval_count() {
            let id = IntervalId::from_index(i as u64);
            let v = m.engine().interval(id).unwrap();
            statuses.insert(id, v.status());
        }
        assert_eq!(statuses.len(), m.engine().interval_count());
    }
}

/// The full length-4 exhaustive sweep (18⁴ ≈ 105k scripts × the whole
/// theorem battery). Takes tens of seconds; run on demand with
/// `cargo test --test theorems -- --ignored exhaustive_scripts_of_length_4`.
#[test]
#[ignore = "deep verification; ~105k scripts"]
fn exhaustive_scripts_of_length_4() {
    let ops = alphabet();
    for &a in &ops {
        for &b in &ops {
            for &c in &ops {
                for &d0 in &ops {
                    let mut d = Driver::new(2, 2);
                    d.exec(a);
                    d.exec(b);
                    d.exec(c);
                    d.exec(d0);
                    d.settle_and_check_theorem_6_1();
                }
            }
        }
    }
}
