//! The chaos equivalence sweep: committed outputs are fault-independent.
//!
//! For three representative applications — a core reliable pipeline (the
//! E5 cascade shape), optimistic recovery (E10) and primary-copy
//! replication (E7) — this suite runs the program fault-free and under
//! hundreds of seeded [`FaultPlan`]s mixing message drops, duplication,
//! delay spikes, temporary partitions and crash-restart kills, asserting
//! via [`chaos_sweep`]:
//!
//! * committed outputs are identical to the fault-free run (Theorem 6.2's
//!   irrevocable effects are fault-independent), and
//! * every faulty configuration replays bit-identically under its seed
//!   (any failure is a deterministic repro).
//!
//! Scenario obligations (see `hope_runtime::chaos`): committed values are
//! derived from payloads/pre-fault state (never post-rollback
//! randomness), loss-sensitive messages ride `send_reliable`, and kills
//! always restart (a permanent crash trivially loses output).

use hope_recovery::{run_app_optimistic, run_stable_store};
use hope_replication::{run_primary, Replica};
use hope_runtime::{
    chaos_sweep, governor_sweep, ChaosOutcome, FaultPlan, GovernorConfig, ProcessId, SimConfig,
    Simulation, Value,
};
use hope_sim::{LatencyModel, SimRng, Topology, VirtualDuration, VirtualTime};
use proptest::prelude::*;

fn ms(v: u64) -> VirtualDuration {
    VirtualDuration::from_millis(v)
}

/// Deterministically derive a mixed fault plan from a seed: always some
/// link chaos, plus (seed-dependent) a temporary partition and/or a
/// crash-restart kill of one of `procs` processes.
fn plan_for_seed(seed: u64, procs: u32) -> FaultPlan {
    let mut rng = SimRng::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC4A0);
    let mut plan = FaultPlan::new(seed)
        .drop_rate((rng.next_u64() % 30) as f64 / 100.0)
        .dupe_rate((rng.next_u64() % 20) as f64 / 100.0)
        .delay_spikes(
            (rng.next_u64() % 25) as f64 / 100.0,
            ms(1 + rng.next_u64() % 8),
        );
    if rng.next_u64().is_multiple_of(2) {
        let a = (rng.next_u64() % procs as u64) as u32;
        let b = (rng.next_u64() % procs as u64) as u32;
        if a != b {
            let from = VirtualTime::ZERO + ms(1 + rng.next_u64() % 20);
            plan = plan.partition_between(a, b, from, from + ms(5 + rng.next_u64() % 25));
        }
    }
    if rng.next_u64().is_multiple_of(2) {
        let victim = (rng.next_u64() % procs as u64) as u32;
        let at_step = 5 + rng.next_u64() % 70;
        plan = plan.kill(victim, at_step, Some(ms(1 + rng.next_u64() % 20)));
    }
    plan
}

fn base_config(seed: u64) -> SimConfig {
    SimConfig::with_seed(seed).with_topology(Topology::uniform(LatencyModel::Fixed(ms(2))))
}

/// Core scenario: a three-stage pipeline, every hop reliable. Rollback
/// cascades cross process boundaries exactly as in E5 when a hop's
/// "delivered" assumption is denied by a timeout.
fn pipeline_scenario(cfg: SimConfig) -> Simulation {
    const ITEMS: i64 = 5;
    let mut sim = Simulation::new(cfg);
    let relay = ProcessId(1);
    let sink = ProcessId(2);
    sim.spawn("source", move |ctx| {
        for i in 0..ITEMS {
            ctx.send_reliable(relay, Value::Int(i))?;
            ctx.compute(VirtualDuration::from_micros(300))?;
        }
        ctx.output("source done")?;
        Ok(())
    });
    sim.spawn("relay", move |ctx| {
        for expected in 0..ITEMS {
            let m = ctx.recv_matching(move |m| m.payload == Value::Int(expected))?;
            ctx.send_reliable(sink, Value::Int(m.payload.expect_int() * 10))?;
        }
        Ok(())
    });
    sim.spawn("sink", |ctx| {
        for expected in 0..ITEMS {
            let m = ctx.recv_matching(move |m| m.payload == Value::Int(expected * 10))?;
            ctx.output(format!("sink got {}", m.payload))?;
        }
        Ok(())
    });
    sim
}

/// Recovery scenario (E10): optimistic logging to a stable store.
fn recovery_scenario(cfg: SimConfig) -> Simulation {
    let mut sim = Simulation::new(cfg);
    let store = ProcessId(1);
    sim.spawn("app", move |ctx| {
        run_app_optimistic(ctx, store, 8, VirtualDuration::from_micros(200))
    });
    sim.spawn("store", move |ctx| run_stable_store(ctx, ms(5)));
    sim
}

/// Replication scenario (E7): two clients write disjoint keys through the
/// primary over reliable sends; crash-recovering clients converge via the
/// primary's `try_affirm` repair path.
fn replication_scenario(cfg: SimConfig) -> Simulation {
    let mut sim = Simulation::new(cfg);
    let primary = ProcessId(2);
    for c in 0..2u32 {
        sim.spawn(format!("client{c}"), move |ctx| {
            let mut rep = Replica::new(primary);
            let key = format!("k{c}");
            for i in 0..4 {
                rep.write_reliable(ctx, &key, Value::Int(i))?;
                ctx.output(format!("client{c} wrote {i}"))?;
            }
            Ok(())
        });
    }
    sim.spawn("primary", move |ctx| {
        run_primary(
            ctx,
            vec![ProcessId(0), ProcessId(1)],
            VirtualDuration::from_micros(10),
            |_| {},
        )
    });
    sim
}

/// Fossil-collection scenario: a checkpointing open loop (the E19 shape,
/// shortened). Both processes use the [`Ctx::restore`]/[`Ctx::checkpoint`]
/// protocol, so fossil collection truncates their journal prefixes
/// mid-run and any crash-restart replays from the horizon snapshot
/// instead of step zero. Announcements ride `send_reliable` (kills and
/// drops may lose them) and committed lines are fixed strings.
fn checkpointed_loop_scenario(cfg: SimConfig) -> Simulation {
    const ITERS: i64 = 60;
    let mut sim = Simulation::new(cfg);
    let verifier = ProcessId(1);
    sim.spawn("guesser", move |ctx| {
        let mut i = match ctx.restore()? {
            Some(v) => v.expect_int(),
            None => 0,
        };
        while i < ITERS {
            ctx.checkpoint(Value::Int(i))?;
            let aid = ctx.aid_init()?;
            ctx.send_reliable(verifier, Value::Int(aid.index() as i64))?;
            let _ = ctx.guess(aid)?;
            ctx.compute(VirtualDuration::from_micros(200))?;
            i += 1;
        }
        ctx.output("guesser done")?;
        Ok(())
    });
    sim.spawn("verifier", move |ctx| {
        let mut seen = match ctx.restore()? {
            Some(v) => v.expect_int(),
            None => 0,
        };
        while seen < ITERS {
            ctx.checkpoint(Value::Int(seen))?;
            let m = ctx.recv()?;
            ctx.affirm(hope_core::AidId::from_index(m.payload.expect_int() as u64))?;
            seen += 1;
        }
        ctx.output("verifier done")?;
        Ok(())
    });
    sim
}

fn sweep(
    scenario: impl Fn(SimConfig) -> Simulation,
    procs: u32,
    seeds: std::ops::Range<u64>,
) -> ChaosOutcome {
    let outcome = chaos_sweep(
        base_config(11),
        seeds.map(|s| plan_for_seed(s, procs)),
        scenario,
    );
    outcome.assert_ok();
    assert!(
        outcome.faults.drops + outcome.faults.dupes + outcome.faults.kills > 0,
        "the sweep must actually inject faults: {:?}",
        outcome.faults
    );
    outcome
}

// The three acceptance sweeps: ≥ 200 seeded plans across three scenarios.

#[test]
fn pipeline_sweep_70_plans() {
    let outcome = sweep(pipeline_scenario, 3, 0..70);
    assert!(outcome.faults.kills > 0, "{:?}", outcome.faults);
    assert!(outcome.faults.retries > 0, "{:?}", outcome.faults);
    // The retry-pressure signal the governor consumes: every retry is a
    // re-attempt of some first send, so `retries / reliable_sends` is a
    // well-defined per-send pressure ratio. Under these mixed plans it
    // must be strictly positive (faults force retransmissions) yet
    // bounded — each send retries finitely under the backoff cap.
    assert!(outcome.faults.reliable_sends > 0, "{:?}", outcome.faults);
    let pressure = outcome.faults.retries as f64 / outcome.faults.reliable_sends as f64;
    assert!(
        pressure > 0.0 && pressure < 50.0,
        "implausible retry pressure {pressure}: {:?}",
        outcome.faults
    );
}

#[test]
fn recovery_sweep_70_plans() {
    let outcome = sweep(recovery_scenario, 2, 1000..1070);
    assert!(outcome.faults.restarts > 0, "{:?}", outcome.faults);
}

#[test]
fn replication_sweep_70_plans() {
    let outcome = sweep(replication_scenario, 3, 2000..2070);
    assert!(outcome.faults.kills > 0, "{:?}", outcome.faults);
}

/// The fossil-collection sweep: crash-restart kills while collection is
/// actively truncating journal prefixes. Committed outputs must match the
/// fault-free run under every plan (chaos_sweep asserts it), and the
/// whole sweep's baseline must match the identical sweep with collection
/// off — replay-from-horizon is observationally invisible.
#[test]
fn fossil_collection_sweep_70_plans() {
    let plans = || (3000..3070).map(|s| plan_for_seed(s, 2));
    let on = chaos_sweep(
        base_config(11).with_fossil_collection(true),
        plans(),
        checkpointed_loop_scenario,
    );
    on.assert_ok();
    assert!(
        on.faults.kills > 0 && on.faults.restarts > 0,
        "the sweep must exercise crash-restart: {:?}",
        on.faults
    );
    let off = chaos_sweep(base_config(11), plans(), checkpointed_loop_scenario);
    off.assert_ok();
    assert_eq!(
        on.baseline, off.baseline,
        "fossil collection changed committed outputs"
    );
    // Collection must actually engage, or the sweep proves nothing: check
    // a representative faulty run reclaimed engine records and journal
    // prefixes mid-flight.
    let r = checkpointed_loop_scenario(
        base_config(11)
            .with_fossil_collection(true)
            .with_faults(plan_for_seed(3001, 2)),
    )
    .run();
    let mem = r.stats().memory;
    assert!(
        mem.reclaimed_intervals > 0 && mem.reclaimed_journal_entries > 0,
        "collection never engaged: {mem:?}"
    );
}

/// The governor transparency sweep: with the admission governor enabled —
/// tuned aggressively enough that drops and kills push sites into
/// Throttled and Conservative — committed outputs must stay bit-identical
/// to the governor-off run under every one of 70 seeded plans mixing
/// drops, duplication, delay spikes, temporary partitions and
/// crash-restart kills ([`governor_sweep`] compares the paired runs per
/// plan, fault-free config included). Degradation changes *when* guesses
/// run, never *what* commits.
#[test]
fn governor_equivalence_sweep_70_plans() {
    let gov = GovernorConfig::default()
        .with_window(8)
        .with_min_samples(2)
        .with_thresholds(200, 1200)
        .with_hold(ms(1));
    let outcome = governor_sweep(
        base_config(11).with_governor(gov),
        (4000..4070).map(|s| plan_for_seed(s, 2)),
        checkpointed_loop_scenario,
    );
    outcome.assert_ok();
    assert_eq!(outcome.plans, 70);
    assert!(
        outcome.faults.drops > 0 && outcome.faults.kills > 0,
        "the sweep must actually inject faults: {:?}",
        outcome.faults
    );
    // The sweep proves nothing if the governor never leaves Optimistic:
    // check a representative hostile plan actually throttled or converted.
    let r = checkpointed_loop_scenario(
        base_config(11)
            .with_governor(
                GovernorConfig::default()
                    .with_window(8)
                    .with_min_samples(2)
                    .with_thresholds(200, 1200)
                    .with_hold(ms(1)),
            )
            .with_faults(plan_for_seed(4003, 2)),
    )
    .run();
    let g = r.stats().governor;
    assert!(
        g.held + g.converted > 0 && g.transitions > 0,
        "governor never engaged under a hostile plan: {g:?}"
    );
}

/// A quick deterministic smoke (also run by CI's chaos step): a handful of
/// hostile plans per scenario.
#[test]
fn chaos_smoke() {
    for (scenario, procs) in [
        (pipeline_scenario as fn(SimConfig) -> Simulation, 3u32),
        (recovery_scenario, 2),
        (replication_scenario, 3),
    ] {
        sweep(scenario, procs, 42..48);
    }
    // The checkpointing scenario, with collection live under the kills.
    chaos_sweep(
        base_config(11).with_fossil_collection(true),
        (42..48).map(|s| plan_for_seed(s, 2)),
        checkpointed_loop_scenario,
    )
    .assert_ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized plans (rates and kill schedules drawn by proptest rather
    /// than our own generator) preserve committed-output equivalence on
    /// the recovery scenario.
    #[test]
    fn random_plans_preserve_recovery_outputs(
        seed in 0u64..10_000,
        drop in 0.0f64..0.35,
        dupe in 0.0f64..0.25,
        victim in 0u32..2,
        at_step in 5u64..60,
        downtime_ms in 1u64..15,
    ) {
        let plan = FaultPlan::new(seed)
            .drop_rate(drop)
            .dupe_rate(dupe)
            .kill(victim, at_step, Some(ms(downtime_ms)));
        let outcome = chaos_sweep(base_config(11), [plan], recovery_scenario);
        prop_assert!(outcome.is_ok(), "{:?}", outcome.failures);
    }
}
